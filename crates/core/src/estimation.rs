//! Estimation functions for TopoLB (§4.3 of the paper).
//!
//! During iteration `k` of the mapping algorithm only a *partial* mapping
//! exists. The estimation function `fest(t, p, P)` approximates the
//! contribution of task `t` to the overall hop-bytes if it were placed on
//! free processor `p` now:
//!
//! - **First order** — drop terms for unplaced tasks:
//!   `fest = Σ_{j ∈ assigned} c_tj · d(p, P(j))`.
//! - **Second order** — assume unplaced neighbors land on a uniformly
//!   random processor of the whole machine:
//!   `fest = Σ_{j ∈ assigned} c_tj · d(p, P(j)) + Σ_{j ∈ unassigned} c_tj · avg_Vp(p)`
//!   where `avg_Vp(p) = Σ_q d(p,q)/|Vp|`. This is the order TopoLB ships
//!   with (O(p·|Et|) total update cost).
//! - **Third order** — assume unplaced neighbors land on a uniformly
//!   random *free* processor: replaces `avg_Vp(p)` with
//!   `avg_Pk(p) = Σ_{q ∈ Pk} d(p,q)/|Pk|`, tracked incrementally. Tighter,
//!   but O(p²) per iteration (O(p³) total), as analyzed in §4.4.
//!
//! [`EstimationState`] maintains the `p × p` table of `fest` values
//! incrementally together with the per-task minimum (`FMin`) and sum
//! (`FSum`, giving `FAvg`) over free processors, exactly the bookkeeping
//! the paper describes for its complexity bounds.

use crate::obs;
use crate::par::{Executor, Parallelism};
use topomap_taskgraph::{TaskGraph, TaskId};
use topomap_topology::{stats::AvgDistTable, NodeId, Topology};

/// Which approximation of §4.3 to use for unplaced-neighbor terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EstimationOrder {
    /// Ignore unplaced neighbors entirely.
    First,
    /// Unplaced neighbors at the machine-wide average distance (the
    /// paper's production choice).
    #[default]
    Second,
    /// Unplaced neighbors at the average distance over *free* processors.
    Third,
}

impl EstimationOrder {
    pub fn label(self) -> &'static str {
        match self {
            EstimationOrder::First => "first-order",
            EstimationOrder::Second => "second-order",
            EstimationOrder::Third => "third-order",
        }
    }
}

/// Incrementally maintained estimation table for one mapping run.
pub struct EstimationState<'a> {
    tasks: &'a TaskGraph,
    topo: &'a dyn Topology,
    order: EstimationOrder,
    p: usize,
    /// `assigned_contrib[t * p + q]` = Σ over *assigned* neighbors j of t
    /// of `c_tj · d(q, P(j))`. Only entries with `t` unassigned and `q`
    /// free are ever read.
    assigned_contrib: Vec<f64>,
    /// Total edge weight from t to its still-unassigned neighbors.
    unassigned_wgt: Vec<f64>,
    /// Machine-wide average distance table (second order).
    avg_all: AvgDistTable,
    /// Σ_{q ∈ free} d(r, q) for each processor r (third order only).
    sum_free: Vec<f64>,
    free: Vec<NodeId>,
    free_pos: Vec<usize>,
    unassigned: Vec<TaskId>,
    unassigned_pos: Vec<usize>,
    /// Per-task FMin value and its argmin processor over free procs.
    fmin: Vec<f64>,
    fmin_proc: Vec<NodeId>,
    /// Per-task Σ of fest over free procs (FAvg = fsum / |free|).
    fsum: Vec<f64>,
    /// Placement of assigned tasks.
    placement: Vec<NodeId>,
    /// Scratch mask over tasks: neighbors of the task being assigned.
    nbr_mask: Vec<bool>,
    /// Worker pool for the parallel scans (serial when 1 thread).
    exec: Executor,
}

/// `FMin`/argmin/`FSum` of a task's fest over the free list, scanned in
/// list order with the lowest-id tie-break.
///
/// Every stats computation — serial or inside a worker — goes through
/// this one scan, and a task's scan is never split across workers, so
/// the floating-point accumulation order (and hence the result) is
/// independent of the thread count.
fn scan_stats(free: &[NodeId], fest_t: impl Fn(NodeId) -> f64) -> (f64, NodeId, f64) {
    let mut min = f64::INFINITY;
    let mut argmin = usize::MAX;
    let mut sum = 0.0;
    for &q in free {
        let f = fest_t(q);
        sum += f;
        if f < min || (f == min && q < argmin) {
            min = f;
            argmin = q;
        }
    }
    (min, argmin, sum)
}

impl<'a> EstimationState<'a> {
    pub fn new(tasks: &'a TaskGraph, topo: &'a dyn Topology, order: EstimationOrder) -> Self {
        Self::with_parallelism(tasks, topo, order, Parallelism::default())
    }

    pub fn with_parallelism(
        tasks: &'a TaskGraph,
        topo: &'a dyn Topology,
        order: EstimationOrder,
        par: Parallelism,
    ) -> Self {
        let n = tasks.num_tasks();
        let p = topo.num_nodes();
        assert!(n <= p, "need at least as many processors as tasks");
        // Covers the distance tables plus the initial full fest scan.
        let _init_span = obs::span("estimation.init");
        let avg_all = AvgDistTable::new(topo);
        let sum_free = match order {
            EstimationOrder::Third => (0..p).map(|r| avg_all.sum(r) as f64).collect(),
            _ => Vec::new(),
        };
        let mut s = EstimationState {
            tasks,
            topo,
            order,
            p,
            assigned_contrib: vec![0.0; n * p],
            unassigned_wgt: (0..n).map(|t| tasks.weighted_degree(t)).collect(),
            avg_all,
            sum_free,
            free: (0..p).collect(),
            free_pos: (0..p).collect(),
            unassigned: (0..n).collect(),
            unassigned_pos: (0..n).collect(),
            fmin: vec![0.0; n],
            fmin_proc: vec![0; n],
            fsum: vec![0.0; n],
            placement: vec![usize::MAX; n],
            nbr_mask: vec![false; n],
            exec: Executor::new(par),
        };
        let initial = {
            let this = &s;
            this.exec.map_chunks(n, p, |range| {
                range
                    .map(|t| {
                        let (min, argmin, sum) = scan_stats(&this.free, |q| this.fest(t, q));
                        (t, min, argmin, sum)
                    })
                    .collect::<Vec<_>>()
            })
        };
        for chunk in initial {
            for (t, min, argmin, sum) in chunk {
                s.fmin[t] = min;
                s.fmin_proc[t] = argmin;
                s.fsum[t] = sum;
            }
        }
        s
    }

    /// The per-byte distance assumed for an unplaced neighbor when the
    /// candidate processor is `q`.
    #[inline]
    fn unplaced_factor(&self, q: NodeId) -> f64 {
        match self.order {
            EstimationOrder::First => 0.0,
            EstimationOrder::Second => self.avg_all.avg(q),
            EstimationOrder::Third => {
                let f = self.free.len();
                if f == 0 {
                    0.0
                } else {
                    self.sum_free[q] / f as f64
                }
            }
        }
    }

    /// Current `fest(t, q)` for unassigned task `t` and free processor `q`.
    #[inline]
    pub fn fest(&self, t: TaskId, q: NodeId) -> f64 {
        debug_assert!(self.placement[t] == usize::MAX, "task already placed");
        debug_assert!(self.free_pos[q] != usize::MAX, "processor not free");
        self.assigned_contrib[t * self.p + q] + self.unassigned_wgt[t] * self.unplaced_factor(q)
    }

    /// Gain of placing `t` now: `FAvg(t) − FMin(t)` (Algorithm 1's
    /// criticality measure).
    #[inline]
    pub fn gain(&self, t: TaskId) -> f64 {
        let f = self.free.len();
        if f == 0 {
            return 0.0;
        }
        self.fsum[t] / f as f64 - self.fmin[t]
    }

    /// The unassigned task with maximum gain (ties → lowest id).
    ///
    /// Parallel: each worker scans a contiguous chunk of the unassigned
    /// list; (gain desc, id asc) is a total order, so the argmax is the
    /// same wherever the chunk boundaries fall — bit-identical to the
    /// serial scan.
    pub fn select_task(&self) -> TaskId {
        debug_assert!(!self.unassigned.is_empty());
        let parts = self.exec.map_chunks(self.unassigned.len(), 1, |range| {
            let mut best_t = usize::MAX;
            let mut best_gain = f64::NEG_INFINITY;
            for i in range {
                let t = self.unassigned[i];
                let g = self.gain(t);
                if g > best_gain || (g == best_gain && t < best_t) {
                    best_gain = g;
                    best_t = t;
                }
            }
            (best_gain, best_t)
        });
        let mut best_t = usize::MAX;
        let mut best_gain = f64::NEG_INFINITY;
        for (g, t) in parts {
            if g > best_gain || (g == best_gain && t < best_t) {
                best_gain = g;
                best_t = t;
            }
        }
        best_t
    }

    /// The free processor where `t` costs least (ties → lowest id);
    /// maintained incrementally, O(1).
    #[inline]
    pub fn best_proc(&self, t: TaskId) -> NodeId {
        self.fmin_proc[t]
    }

    pub fn num_free(&self) -> usize {
        self.free.len()
    }

    pub fn num_unassigned(&self) -> usize {
        self.unassigned.len()
    }

    pub fn free_procs(&self) -> &[NodeId] {
        &self.free
    }

    pub fn is_free(&self, q: NodeId) -> bool {
        self.free_pos[q] != usize::MAX
    }

    /// Commit the placement `t → q` and update the table (the paper's
    /// per-iteration update step; O(p·δ(t)) for orders one/two, O(p²) for
    /// order three).
    pub fn assign(&mut self, t: TaskId, q: NodeId) {
        assert!(self.placement[t] == usize::MAX, "task {t} already placed");
        assert!(self.free_pos[q] != usize::MAX, "processor {q} not free");
        obs::counter_add("estimation.assigns", 1);
        self.placement[t] = q;

        // Remove t from unassigned (swap-remove keeps O(1)).
        let ti = self.unassigned_pos[t];
        let last = *self.unassigned.last().unwrap();
        self.unassigned.swap_remove(ti);
        if last != t {
            self.unassigned_pos[last] = ti;
        }
        self.unassigned_pos[t] = usize::MAX;

        // Remove q from free.
        let qi = self.free_pos[q];
        let lastq = *self.free.last().unwrap();
        self.free.swap_remove(qi);
        if lastq != q {
            self.free_pos[lastq] = qi;
        }
        self.free_pos[q] = usize::MAX;

        if self.unassigned.is_empty() {
            return;
        }

        // Unplaced neighbors of t: their assigned contribution gains the
        // c·d(·, q) term and their unassigned weight drops by c.
        let nbrs: Vec<(TaskId, f64)> = self
            .tasks
            .neighbors(t)
            .filter(|&(j, _)| self.placement[j] == usize::MAX)
            .collect();
        for &(j, c) in &nbrs {
            self.unassigned_wgt[j] -= c;
            self.nbr_mask[j] = true;
        }

        // Parallel region 1: the d(·, q) column. Third order needs it for
        // the whole machine (the free-set average changes for every
        // processor); orders one/two only over the free list, and only
        // when some unplaced neighbor's row must absorb it. Each distance
        // is written by exactly one worker, so the column is bit-identical
        // however it is chunked.
        let dist_q: Vec<f64> = if self.order == EstimationOrder::Third {
            let col = self.dist_column(q, self.p, |r| r);
            for (r, d) in col.iter().enumerate() {
                self.sum_free[r] -= d;
            }
            col
        } else if nbrs.is_empty() {
            Vec::new()
        } else {
            // Indexed by *position* in the free list.
            let this = &*self;
            this.dist_column(q, this.free.len(), |i| this.free[i])
        };

        for &(j, c) in &nbrs {
            let row = j * self.p;
            for i in 0..self.free.len() {
                let r = self.free[i];
                let d = if self.order == EstimationOrder::Third {
                    dist_q[r]
                } else {
                    dist_q[i]
                };
                self.assigned_contrib[row + r] += c * d;
            }
        }

        // Parallel region 2: per-free-processor fest recomputation, one
        // worker chunk per slice of the unassigned list. A task's stats
        // scan is never split (see `scan_stats`), and each worker's
        // results land in disjoint rows, so the outcome matches the
        // serial loop exactly.
        let free_len = self.free.len();
        let u_len = self.unassigned.len();
        let updates = match self.order {
            EstimationOrder::Third => {
                // Every fest value changed: recompute stats for all
                // unassigned tasks (O(p²) per iteration, §4.4).
                let this = &*self;
                this.exec.map_chunks(u_len, free_len + 1, |range| {
                    range
                        .map(|i| {
                            let u = this.unassigned[i];
                            let (min, argmin, sum) = scan_stats(&this.free, |c| this.fest(u, c));
                            (u, min, argmin, sum)
                        })
                        .collect::<Vec<_>>()
                })
            }
            _ => {
                // Neighbors changed everywhere: full recompute for them.
                // Other tasks only lost processor q from the free set:
                // subtract its fest from FSum; recompute FMin only if its
                // argmin was q.
                let wpi = 4 + nbrs.len() * free_len / u_len.max(1);
                let this = &*self;
                this.exec.map_chunks(u_len, wpi, |range| {
                    let mut out = Vec::with_capacity(range.len());
                    // Which path each task takes is deterministic (mask and
                    // argmin are thread-invariant), so these per-chunk tallies
                    // sum to the same totals for every chunking.
                    let (mut full, mut fast) = (0u64, 0u64);
                    for i in range {
                        let u = this.unassigned[i];
                        if this.nbr_mask[u] {
                            let (min, argmin, sum) = scan_stats(&this.free, |c| this.fest(u, c));
                            out.push((u, min, argmin, sum));
                            full += 1;
                            continue;
                        }
                        // fest(u, q) with q now removed: reconstruct the
                        // value it had (assigned_contrib row still valid).
                        let old = this.assigned_contrib[u * this.p + q]
                            + this.unassigned_wgt[u] * this.unplaced_factor_for_removed(q);
                        let sum = this.fsum[u] - old;
                        if this.fmin_proc[u] == q {
                            let (min, argmin, s) = scan_stats(&this.free, |c| this.fest(u, c));
                            out.push((u, min, argmin, s));
                            full += 1;
                        } else {
                            out.push((u, this.fmin[u], this.fmin_proc[u], sum));
                            fast += 1;
                        }
                    }
                    obs::counter_add("estimation.fest_full_scan", full);
                    obs::counter_add("estimation.fest_incremental", fast);
                    out
                })
            }
        };
        if self.order == EstimationOrder::Third {
            // Third order recomputes every unassigned task's stats in full.
            obs::counter_add("estimation.fest_full_scan", u_len as u64);
        }
        for chunk in updates {
            for (u, min, argmin, sum) in chunk {
                self.fmin[u] = min;
                self.fmin_proc[u] = argmin;
                self.fsum[u] = sum;
            }
        }
        for &(j, _) in &nbrs {
            self.nbr_mask[j] = false;
        }
    }

    /// `d(idx(i), q)` for `i in 0..len`, computed in parallel chunks.
    fn dist_column(&self, q: NodeId, len: usize, idx: impl Fn(usize) -> NodeId + Sync) -> Vec<f64> {
        let chunks = self.exec.map_chunks(len, 4, |range| {
            range
                .map(|i| self.topo.distance(idx(i), q) as f64)
                .collect::<Vec<_>>()
        });
        let mut col = Vec::with_capacity(len);
        for c in chunks {
            col.extend(c);
        }
        col
    }

    /// `unplaced_factor` as it applied *before* `q` was removed — for
    /// orders one/two this is identical to the current value (the factor
    /// does not depend on the free set).
    #[inline]
    fn unplaced_factor_for_removed(&self, q: NodeId) -> f64 {
        match self.order {
            EstimationOrder::First => 0.0,
            EstimationOrder::Second => self.avg_all.avg(q),
            EstimationOrder::Third => unreachable!("third order recomputes everything"),
        }
    }

    /// Brute-force fest for validation: recompute from the definition.
    #[cfg(test)]
    fn fest_bruteforce(&self, t: TaskId, q: NodeId) -> f64 {
        let mut v = 0.0;
        for (j, c) in self.tasks.neighbors(t) {
            if self.placement[j] != usize::MAX {
                v += c * self.topo.distance(q, self.placement[j]) as f64;
            } else {
                v += c * self.unplaced_factor(q);
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topomap_taskgraph::gen;
    use topomap_topology::Torus;

    fn check_invariants(state: &EstimationState<'_>) {
        for &t in state.unassigned.iter() {
            let mut min = f64::INFINITY;
            let mut argmin = usize::MAX;
            let mut sum = 0.0;
            for &q in state.free.iter() {
                let f = state.fest(t, q);
                let bf = state.fest_bruteforce(t, q);
                assert!(
                    (f - bf).abs() < 1e-6 * bf.abs().max(1.0),
                    "fest({t},{q}) = {f} but brute force = {bf}"
                );
                sum += f;
                if f < min || (f == min && q < argmin) {
                    min = f;
                    argmin = q;
                }
            }
            assert!(
                (state.fmin[t] - min).abs() < 1e-6 * min.abs().max(1.0),
                "FMin[{t}] = {} but brute force = {min}",
                state.fmin[t]
            );
            assert!(
                (state.fsum[t] - sum).abs() < 1e-6 * sum.abs().max(1.0),
                "FSum[{t}] = {} but brute force = {sum}",
                state.fsum[t]
            );
            // argmin agreement modulo float ties
            let f_arg = state.fest(t, state.fmin_proc[t]);
            assert!((f_arg - min).abs() < 1e-9 * min.abs().max(1.0));
        }
    }

    fn run_incremental_check(order: EstimationOrder) {
        let tasks = gen::stencil2d(4, 4, 100.0, false);
        let topo = Torus::torus_2d(4, 4);
        let mut state = EstimationState::new(&tasks, &topo, order);
        check_invariants(&state);
        // Drive the full Algorithm-1 loop, checking after every step.
        for _ in 0..16 {
            let t = state.select_task();
            let q = state.best_proc(t);
            state.assign(t, q);
            check_invariants(&state);
        }
        assert_eq!(state.num_unassigned(), 0);
        assert_eq!(state.num_free(), 0);
    }

    #[test]
    fn incremental_matches_bruteforce_first_order() {
        run_incremental_check(EstimationOrder::First);
    }

    #[test]
    fn incremental_matches_bruteforce_second_order() {
        run_incremental_check(EstimationOrder::Second);
    }

    #[test]
    fn incremental_matches_bruteforce_third_order() {
        run_incremental_check(EstimationOrder::Third);
    }

    #[test]
    fn more_procs_than_tasks() {
        let tasks = gen::ring(5, 10.0);
        let topo = Torus::torus_2d(3, 3);
        let mut state = EstimationState::new(&tasks, &topo, EstimationOrder::Second);
        for _ in 0..5 {
            let t = state.select_task();
            let q = state.best_proc(t);
            state.assign(t, q);
            check_invariants(&state);
        }
        assert_eq!(state.num_free(), 4);
    }

    #[test]
    fn second_order_first_pick_is_hub_to_center() {
        // A star task graph: the hub has the largest unassigned weight, so
        // second-order gain selects it first; its best processor is the
        // topology center (min average distance).
        let mut b = topomap_taskgraph::TaskGraph::builder(5);
        for leaf in 1..5 {
            b.add_comm(0, leaf, 100.0);
        }
        let tasks = b.build();
        let topo = Torus::mesh_2d(3, 3); // center = (1,1) = node 4
        let state = EstimationState::new(&tasks, &topo, EstimationOrder::Second);
        let t = state.select_task();
        assert_eq!(t, 0, "hub should be most critical");
        assert_eq!(state.best_proc(0), 4, "hub goes to the mesh center");
    }

    #[test]
    #[should_panic(expected = "at least as many processors")]
    fn too_few_processors_rejected() {
        let tasks = gen::ring(10, 1.0);
        let topo = Torus::torus_2d(3, 3);
        EstimationState::new(&tasks, &topo, EstimationOrder::Second);
    }

    #[test]
    #[should_panic(expected = "already placed")]
    fn double_assign_rejected() {
        let tasks = gen::ring(4, 1.0);
        let topo = Torus::torus_2d(2, 2);
        let mut state = EstimationState::new(&tasks, &topo, EstimationOrder::Second);
        state.assign(0, 0);
        state.assign(0, 1);
    }

    #[test]
    fn order_labels() {
        assert_eq!(EstimationOrder::First.label(), "first-order");
        assert_eq!(EstimationOrder::Second.label(), "second-order");
        assert_eq!(EstimationOrder::Third.label(), "third-order");
        assert_eq!(EstimationOrder::default(), EstimationOrder::Second);
    }
}
