//! Estimation functions for TopoLB (§4.3 of the paper).
//!
//! During iteration `k` of the mapping algorithm only a *partial* mapping
//! exists. The estimation function `fest(t, p, P)` approximates the
//! contribution of task `t` to the overall hop-bytes if it were placed on
//! free processor `p` now:
//!
//! - **First order** — drop terms for unplaced tasks:
//!   `fest = Σ_{j ∈ assigned} c_tj · d(p, P(j))`.
//! - **Second order** — assume unplaced neighbors land on a uniformly
//!   random processor of the whole machine:
//!   `fest = Σ_{j ∈ assigned} c_tj · d(p, P(j)) + Σ_{j ∈ unassigned} c_tj · avg_Vp(p)`
//!   where `avg_Vp(p) = Σ_q d(p,q)/|Vp|`. This is the order TopoLB ships
//!   with (O(p·|Et|) total update cost).
//! - **Third order** — assume unplaced neighbors land on a uniformly
//!   random *free* processor: replaces `avg_Vp(p)` with
//!   `avg_Pk(p) = Σ_{q ∈ Pk} d(p,q)/|Pk|`, tracked incrementally. Tighter,
//!   but O(p²) per iteration (O(p³) total), as analyzed in §4.4.
//!
//! [`EstimationState`] maintains the `p × p` table of `fest` values
//! incrementally together with the per-task minimum (`FMin`) and sum
//! (`FSum`, giving `FAvg`) over free processors, exactly the bookkeeping
//! the paper describes for its complexity bounds.

use topomap_taskgraph::{TaskGraph, TaskId};
use topomap_topology::{stats::AvgDistTable, NodeId, Topology};

/// Which approximation of §4.3 to use for unplaced-neighbor terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EstimationOrder {
    /// Ignore unplaced neighbors entirely.
    First,
    /// Unplaced neighbors at the machine-wide average distance (the
    /// paper's production choice).
    #[default]
    Second,
    /// Unplaced neighbors at the average distance over *free* processors.
    Third,
}

impl EstimationOrder {
    pub fn label(self) -> &'static str {
        match self {
            EstimationOrder::First => "first-order",
            EstimationOrder::Second => "second-order",
            EstimationOrder::Third => "third-order",
        }
    }
}

/// Incrementally maintained estimation table for one mapping run.
pub struct EstimationState<'a> {
    tasks: &'a TaskGraph,
    topo: &'a dyn Topology,
    order: EstimationOrder,
    p: usize,
    /// `assigned_contrib[t * p + q]` = Σ over *assigned* neighbors j of t
    /// of `c_tj · d(q, P(j))`. Only entries with `t` unassigned and `q`
    /// free are ever read.
    assigned_contrib: Vec<f64>,
    /// Total edge weight from t to its still-unassigned neighbors.
    unassigned_wgt: Vec<f64>,
    /// Machine-wide average distance table (second order).
    avg_all: AvgDistTable,
    /// Σ_{q ∈ free} d(r, q) for each processor r (third order only).
    sum_free: Vec<f64>,
    free: Vec<NodeId>,
    free_pos: Vec<usize>,
    unassigned: Vec<TaskId>,
    unassigned_pos: Vec<usize>,
    /// Per-task FMin value and its argmin processor over free procs.
    fmin: Vec<f64>,
    fmin_proc: Vec<NodeId>,
    /// Per-task Σ of fest over free procs (FAvg = fsum / |free|).
    fsum: Vec<f64>,
    /// Placement of assigned tasks.
    placement: Vec<NodeId>,
}

impl<'a> EstimationState<'a> {
    pub fn new(tasks: &'a TaskGraph, topo: &'a dyn Topology, order: EstimationOrder) -> Self {
        let n = tasks.num_tasks();
        let p = topo.num_nodes();
        assert!(n <= p, "need at least as many processors as tasks");
        let avg_all = AvgDistTable::new(topo);
        let sum_free = match order {
            EstimationOrder::Third => (0..p).map(|r| avg_all.sum(r) as f64).collect(),
            _ => Vec::new(),
        };
        let mut s = EstimationState {
            tasks,
            topo,
            order,
            p,
            assigned_contrib: vec![0.0; n * p],
            unassigned_wgt: (0..n).map(|t| tasks.weighted_degree(t)).collect(),
            avg_all,
            sum_free,
            free: (0..p).collect(),
            free_pos: (0..p).collect(),
            unassigned: (0..n).collect(),
            unassigned_pos: (0..n).collect(),
            fmin: vec![0.0; n],
            fmin_proc: vec![0; n],
            fsum: vec![0.0; n],
            placement: vec![usize::MAX; n],
        };
        for t in 0..n {
            s.recompute_task_stats(t);
        }
        s
    }

    /// The per-byte distance assumed for an unplaced neighbor when the
    /// candidate processor is `q`.
    #[inline]
    fn unplaced_factor(&self, q: NodeId) -> f64 {
        match self.order {
            EstimationOrder::First => 0.0,
            EstimationOrder::Second => self.avg_all.avg(q),
            EstimationOrder::Third => {
                let f = self.free.len();
                if f == 0 {
                    0.0
                } else {
                    self.sum_free[q] / f as f64
                }
            }
        }
    }

    /// Current `fest(t, q)` for unassigned task `t` and free processor `q`.
    #[inline]
    pub fn fest(&self, t: TaskId, q: NodeId) -> f64 {
        debug_assert!(self.placement[t] == usize::MAX, "task already placed");
        debug_assert!(self.free_pos[q] != usize::MAX, "processor not free");
        self.assigned_contrib[t * self.p + q] + self.unassigned_wgt[t] * self.unplaced_factor(q)
    }

    /// Recompute `FMin`/`FSum` for task `t` by scanning the free list.
    fn recompute_task_stats(&mut self, t: TaskId) {
        let mut min = f64::INFINITY;
        let mut argmin = usize::MAX;
        let mut sum = 0.0;
        for i in 0..self.free.len() {
            let q = self.free[i];
            let f = self.fest(t, q);
            sum += f;
            if f < min || (f == min && q < argmin) {
                min = f;
                argmin = q;
            }
        }
        self.fmin[t] = min;
        self.fmin_proc[t] = argmin;
        self.fsum[t] = sum;
    }

    /// Gain of placing `t` now: `FAvg(t) − FMin(t)` (Algorithm 1's
    /// criticality measure).
    #[inline]
    pub fn gain(&self, t: TaskId) -> f64 {
        let f = self.free.len();
        if f == 0 {
            return 0.0;
        }
        self.fsum[t] / f as f64 - self.fmin[t]
    }

    /// The unassigned task with maximum gain (ties → lowest id).
    pub fn select_task(&self) -> TaskId {
        debug_assert!(!self.unassigned.is_empty());
        let mut best_t = usize::MAX;
        let mut best_gain = f64::NEG_INFINITY;
        for &t in &self.unassigned {
            let g = self.gain(t);
            if g > best_gain || (g == best_gain && t < best_t) {
                best_gain = g;
                best_t = t;
            }
        }
        best_t
    }

    /// The free processor where `t` costs least (ties → lowest id);
    /// maintained incrementally, O(1).
    #[inline]
    pub fn best_proc(&self, t: TaskId) -> NodeId {
        self.fmin_proc[t]
    }

    pub fn num_free(&self) -> usize {
        self.free.len()
    }

    pub fn num_unassigned(&self) -> usize {
        self.unassigned.len()
    }

    pub fn free_procs(&self) -> &[NodeId] {
        &self.free
    }

    pub fn is_free(&self, q: NodeId) -> bool {
        self.free_pos[q] != usize::MAX
    }

    /// Commit the placement `t → q` and update the table (the paper's
    /// per-iteration update step; O(p·δ(t)) for orders one/two, O(p²) for
    /// order three).
    pub fn assign(&mut self, t: TaskId, q: NodeId) {
        assert!(self.placement[t] == usize::MAX, "task {t} already placed");
        assert!(self.free_pos[q] != usize::MAX, "processor {q} not free");
        self.placement[t] = q;

        // Remove t from unassigned (swap-remove keeps O(1)).
        let ti = self.unassigned_pos[t];
        let last = *self.unassigned.last().unwrap();
        self.unassigned.swap_remove(ti);
        if last != t {
            self.unassigned_pos[last] = ti;
        }
        self.unassigned_pos[t] = usize::MAX;

        // Remove q from free.
        let qi = self.free_pos[q];
        let lastq = *self.free.last().unwrap();
        self.free.swap_remove(qi);
        if lastq != q {
            self.free_pos[lastq] = qi;
        }
        self.free_pos[q] = usize::MAX;

        if self.unassigned.is_empty() {
            return;
        }

        // Third order: the free-set average changes for every processor.
        if self.order == EstimationOrder::Third {
            for r in 0..self.p {
                self.sum_free[r] -= self.topo.distance(r, q) as f64;
            }
        }

        // Neighbors of t: their assigned contribution gains the c·d(·, q)
        // term and their unassigned weight drops by c.
        for (j, c) in self.tasks.neighbors(t) {
            if self.placement[j] != usize::MAX {
                continue;
            }
            self.unassigned_wgt[j] -= c;
            let row = j * self.p;
            for i in 0..self.free.len() {
                let r = self.free[i];
                self.assigned_contrib[row + r] += c * self.topo.distance(r, q) as f64;
            }
        }

        match self.order {
            EstimationOrder::Third => {
                // Every fest value changed: recompute stats for all
                // unassigned tasks (O(p²) per iteration, §4.4).
                for i in 0..self.unassigned.len() {
                    let u = self.unassigned[i];
                    self.recompute_task_stats(u);
                }
            }
            _ => {
                // Neighbors changed everywhere: full recompute for them.
                // Other tasks only lost processor q from the free set:
                // subtract its fest from FSum; recompute FMin only if its
                // argmin was q.
                for i in 0..self.unassigned.len() {
                    let u = self.unassigned[i];
                    let is_neighbor = self.tasks.neighbors(t).any(|(j, _)| j == u);
                    if is_neighbor {
                        self.recompute_task_stats(u);
                    } else {
                        // fest(u, q) with q now removed: reconstruct the
                        // value it had (assigned_contrib row still valid).
                        let old = self.assigned_contrib[u * self.p + q]
                            + self.unassigned_wgt[u] * self.unplaced_factor_for_removed(q);
                        self.fsum[u] -= old;
                        if self.fmin_proc[u] == q {
                            self.recompute_task_stats(u);
                        }
                    }
                }
            }
        }
    }

    /// `unplaced_factor` as it applied *before* `q` was removed — for
    /// orders one/two this is identical to the current value (the factor
    /// does not depend on the free set).
    #[inline]
    fn unplaced_factor_for_removed(&self, q: NodeId) -> f64 {
        match self.order {
            EstimationOrder::First => 0.0,
            EstimationOrder::Second => self.avg_all.avg(q),
            EstimationOrder::Third => unreachable!("third order recomputes everything"),
        }
    }

    /// Brute-force fest for validation: recompute from the definition.
    #[cfg(test)]
    fn fest_bruteforce(&self, t: TaskId, q: NodeId) -> f64 {
        let mut v = 0.0;
        for (j, c) in self.tasks.neighbors(t) {
            if self.placement[j] != usize::MAX {
                v += c * self.topo.distance(q, self.placement[j]) as f64;
            } else {
                v += c * self.unplaced_factor(q);
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topomap_taskgraph::gen;
    use topomap_topology::Torus;

    fn check_invariants(state: &EstimationState<'_>) {
        for &t in state.unassigned.iter() {
            let mut min = f64::INFINITY;
            let mut argmin = usize::MAX;
            let mut sum = 0.0;
            for &q in state.free.iter() {
                let f = state.fest(t, q);
                let bf = state.fest_bruteforce(t, q);
                assert!(
                    (f - bf).abs() < 1e-6 * bf.abs().max(1.0),
                    "fest({t},{q}) = {f} but brute force = {bf}"
                );
                sum += f;
                if f < min || (f == min && q < argmin) {
                    min = f;
                    argmin = q;
                }
            }
            assert!(
                (state.fmin[t] - min).abs() < 1e-6 * min.abs().max(1.0),
                "FMin[{t}] = {} but brute force = {min}",
                state.fmin[t]
            );
            assert!(
                (state.fsum[t] - sum).abs() < 1e-6 * sum.abs().max(1.0),
                "FSum[{t}] = {} but brute force = {sum}",
                state.fsum[t]
            );
            // argmin agreement modulo float ties
            let f_arg = state.fest(t, state.fmin_proc[t]);
            assert!((f_arg - min).abs() < 1e-9 * min.abs().max(1.0));
        }
    }

    fn run_incremental_check(order: EstimationOrder) {
        let tasks = gen::stencil2d(4, 4, 100.0, false);
        let topo = Torus::torus_2d(4, 4);
        let mut state = EstimationState::new(&tasks, &topo, order);
        check_invariants(&state);
        // Drive the full Algorithm-1 loop, checking after every step.
        for _ in 0..16 {
            let t = state.select_task();
            let q = state.best_proc(t);
            state.assign(t, q);
            check_invariants(&state);
        }
        assert_eq!(state.num_unassigned(), 0);
        assert_eq!(state.num_free(), 0);
    }

    #[test]
    fn incremental_matches_bruteforce_first_order() {
        run_incremental_check(EstimationOrder::First);
    }

    #[test]
    fn incremental_matches_bruteforce_second_order() {
        run_incremental_check(EstimationOrder::Second);
    }

    #[test]
    fn incremental_matches_bruteforce_third_order() {
        run_incremental_check(EstimationOrder::Third);
    }

    #[test]
    fn more_procs_than_tasks() {
        let tasks = gen::ring(5, 10.0);
        let topo = Torus::torus_2d(3, 3);
        let mut state = EstimationState::new(&tasks, &topo, EstimationOrder::Second);
        for _ in 0..5 {
            let t = state.select_task();
            let q = state.best_proc(t);
            state.assign(t, q);
            check_invariants(&state);
        }
        assert_eq!(state.num_free(), 4);
    }

    #[test]
    fn second_order_first_pick_is_hub_to_center() {
        // A star task graph: the hub has the largest unassigned weight, so
        // second-order gain selects it first; its best processor is the
        // topology center (min average distance).
        let mut b = topomap_taskgraph::TaskGraph::builder(5);
        for leaf in 1..5 {
            b.add_comm(0, leaf, 100.0);
        }
        let tasks = b.build();
        let topo = Torus::mesh_2d(3, 3); // center = (1,1) = node 4
        let state = EstimationState::new(&tasks, &topo, EstimationOrder::Second);
        let t = state.select_task();
        assert_eq!(t, 0, "hub should be most critical");
        assert_eq!(state.best_proc(0), 4, "hub goes to the mesh center");
    }

    #[test]
    #[should_panic(expected = "at least as many processors")]
    fn too_few_processors_rejected() {
        let tasks = gen::ring(10, 1.0);
        let topo = Torus::torus_2d(3, 3);
        EstimationState::new(&tasks, &topo, EstimationOrder::Second);
    }

    #[test]
    #[should_panic(expected = "already placed")]
    fn double_assign_rejected() {
        let tasks = gen::ring(4, 1.0);
        let topo = Torus::torus_2d(2, 2);
        let mut state = EstimationState::new(&tasks, &topo, EstimationOrder::Second);
        state.assign(0, 0);
        state.assign(0, 1);
    }

    #[test]
    fn order_labels() {
        assert_eq!(EstimationOrder::First.label(), "first-order");
        assert_eq!(EstimationOrder::Second.label(), "second-order");
        assert_eq!(EstimationOrder::Third.label(), "third-order");
        assert_eq!(EstimationOrder::default(), EstimationOrder::Second);
    }
}
