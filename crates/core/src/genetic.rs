//! Genetic-algorithm mapping — the second "physical optimization" family
//! from the paper's related work (§2: Arunkumar & Chockalingam's
//! randomized heuristics \[2\]; Orduña, Silla & Duato's iterated-exchange
//! seeds \[18\]).
//!
//! [`GeneticMap`] evolves a population of permutations (task→processor
//! bijections extended with free processors) under the hop-bytes fitness:
//! tournament selection, cycle-safe position crossover, swap mutation,
//! elitism. Like SA, it exists to reproduce the paper's cost/quality
//! comparison — "the time required for them to converge is usually quite
//! large compared to the execution time of the application" — not to be
//! the production mapper.

use crate::obs;
use crate::par::{Executor, Parallelism};
use crate::{metrics, Mapper, Mapping};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use topomap_taskgraph::TaskGraph;
use topomap_topology::Topology;

/// Genetic-algorithm mapper over hop-bytes.
#[derive(Debug, Clone)]
pub struct GeneticMap {
    pub seed: u64,
    pub population: usize,
    pub generations: usize,
    /// Probability a child position is taken from parent A in crossover.
    pub crossover_bias: f64,
    /// Per-child expected number of mutation swaps.
    pub mutation_swaps: f64,
    /// Individuals preserved unchanged each generation.
    pub elite: usize,
    /// Thread configuration for the population fitness batches. Children
    /// are generated serially (the RNG stream fixes the search), only
    /// their fitness evaluation fans out, so any setting yields the same
    /// mapping.
    pub par: Parallelism,
}

impl Default for GeneticMap {
    fn default() -> Self {
        GeneticMap {
            seed: 0x6e6e,
            population: 48,
            generations: 300,
            crossover_bias: 0.5,
            mutation_swaps: 2.0,
            elite: 4,
            par: Parallelism::default(),
        }
    }
}

impl GeneticMap {
    pub fn new(seed: u64) -> Self {
        GeneticMap {
            seed,
            ..Default::default()
        }
    }

    /// A lighter configuration for tests and examples.
    pub fn quick(seed: u64) -> Self {
        GeneticMap {
            seed,
            population: 24,
            generations: 80,
            ..Default::default()
        }
    }
}

/// A genome: `perm[t]` = processor of task `t`; the tail `perm[n..]`
/// holds the unused processors so crossover/mutation stay permutations.
type Genome = Vec<usize>;

/// Hop-bytes of each genome, fanned out over the executor. Each genome's
/// edge sum runs on a single worker in edge order, so the values match a
/// per-genome serial evaluation exactly.
fn batch_fitness(
    exec: &Executor,
    tasks: &TaskGraph,
    topo: &dyn Topology,
    genomes: &[Genome],
    n: usize,
    p: usize,
) -> Vec<f64> {
    let maps: Vec<Mapping> = genomes
        .iter()
        .map(|g| Mapping::new(g[..n].to_vec(), p))
        .collect();
    obs::counter_add("genetic.fitness_evaluations", genomes.len() as u64);
    metrics::hop_bytes_many_in(exec, tasks, topo, &maps)
}

/// Position-based crossover that preserves permutation validity: child
/// copies A's value at positions where a biased coin lands A, then fills
/// remaining positions with B's values in B's order, skipping used ones.
fn crossover(a: &Genome, b: &Genome, bias: f64, rng: &mut StdRng) -> Genome {
    let len = a.len();
    let mut child = vec![usize::MAX; len];
    let mut used = vec![false; len];
    for i in 0..len {
        if rng.gen_bool(bias) {
            child[i] = a[i];
            used[a[i]] = true;
        }
    }
    let mut fill = b.iter().copied().filter(|&v| !used[v]);
    for slot in child.iter_mut() {
        if *slot == usize::MAX {
            *slot = fill.next().expect("permutation fill");
        }
    }
    child
}

impl Mapper for GeneticMap {
    fn map(&self, tasks: &TaskGraph, topo: &dyn Topology) -> Mapping {
        let n = tasks.num_tasks();
        let p = topo.num_nodes();
        assert!(n <= p, "need at least as many processors as tasks");
        let _map_span = obs::span("genetic.map");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let exec = Executor::new(self.par);

        // Initial population of random permutations of all p processors.
        let init_span = obs::span("genetic.init_pop");
        let genomes: Vec<Genome> = (0..self.population.max(2))
            .map(|_| {
                let mut g: Genome = (0..p).collect();
                g.shuffle(&mut rng);
                g
            })
            .collect();
        obs::counter_add("genetic.initial_pop", genomes.len() as u64);
        let fits = batch_fitness(&exec, tasks, topo, &genomes, n, p);
        let mut pop: Vec<(f64, Genome)> = fits.into_iter().zip(genomes).collect();
        pop.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
        drop(init_span);

        let _evolve_span = obs::span("genetic.evolve");
        let mut children_bred = 0u64;
        for _gen in 0..self.generations {
            let mut next: Vec<(f64, Genome)> = pop[..self.elite.min(pop.len())].to_vec();
            // Breed serially (the RNG draw order defines the algorithm),
            // then score the whole brood in one parallel batch.
            let mut children: Vec<Genome> = Vec::with_capacity(pop.len() - next.len());
            while next.len() + children.len() < pop.len() {
                // Tournament selection (size 3).
                let pick = |rng: &mut StdRng| -> usize {
                    (0..3).map(|_| rng.gen_range(0..pop.len())).min().unwrap()
                };
                let (ia, ib) = (pick(&mut rng), pick(&mut rng));
                let mut child = crossover(&pop[ia].1, &pop[ib].1, self.crossover_bias, &mut rng);
                // Poisson-ish mutation: expected `mutation_swaps` swaps.
                let swaps = (self.mutation_swaps * rng.gen_range(0.0..2.0)).round() as usize;
                for _ in 0..swaps {
                    let i = rng.gen_range(0..p);
                    let j = rng.gen_range(0..p);
                    child.swap(i, j);
                }
                children.push(child);
            }
            children_bred += children.len() as u64;
            let fits = batch_fitness(&exec, tasks, topo, &children, n, p);
            next.extend(fits.into_iter().zip(children));
            next.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
            pop = next;
            obs::series_push("genetic.best_hb", pop[0].0);
        }
        obs::counter_add("genetic.generations", self.generations as u64);
        obs::counter_add("genetic.children_bred", children_bred);

        let best = &pop[0].1;
        Mapping::new(best[..n].to_vec(), p)
    }

    fn name(&self) -> String {
        "Genetic".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{metrics, RandomMap};
    use topomap_taskgraph::gen;
    use topomap_topology::Torus;

    #[test]
    fn crossover_preserves_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut a: Genome = (0..20).collect();
        let mut b: Genome = (0..20).collect();
        a.shuffle(&mut rng);
        b.shuffle(&mut rng);
        for _ in 0..50 {
            let c = crossover(&a, &b, 0.5, &mut rng);
            let mut sorted = c.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        }
    }

    #[test]
    fn improves_over_random() {
        let tasks = gen::stencil2d(4, 4, 100.0, false);
        let topo = Torus::torus_2d(4, 4);
        let ga = GeneticMap::quick(2).map(&tasks, &topo);
        let rnd = RandomMap::new(2).map(&tasks, &topo);
        let h_ga = metrics::hop_bytes(&tasks, &topo, &ga);
        let h_rnd = metrics::hop_bytes(&tasks, &topo, &rnd);
        assert!(h_ga < 0.75 * h_rnd, "GA {h_ga} vs random {h_rnd}");
    }

    #[test]
    fn deterministic_per_seed() {
        let tasks = gen::ring(12, 100.0);
        let topo = Torus::torus_2d(4, 4);
        assert_eq!(
            GeneticMap::quick(4).map(&tasks, &topo),
            GeneticMap::quick(4).map(&tasks, &topo)
        );
    }

    #[test]
    fn valid_with_spare_processors() {
        let tasks = gen::ring(6, 10.0);
        let topo = Torus::torus_2d(4, 4);
        let m = GeneticMap::quick(1).map(&tasks, &topo);
        let mut seen = std::collections::HashSet::new();
        for t in 0..6 {
            assert!(seen.insert(m.proc_of(t)));
        }
    }
}
