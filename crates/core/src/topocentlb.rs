//! TopoCentLB — the simpler, faster strategy of §4.5.
//!
//! "In the first iteration, the most communicating task is selected and
//! mapped to a processor. In each subsequent iteration, the task that has
//! maximum total communication with already assigned tasks is selected.
//! It is mapped to the free physical processor where it incurs the least
//! total cost of communication (in terms of hop-bytes) with the already
//! assigned tasks." — i.e. first-order estimation with a
//! max-communication selection rule (Baba et al.'s (P3,P4) scheme).
//!
//! Implemented with the paper's heap: selection pops the max-key task in
//! O(log p); key updates for the popped task's neighbors are lazy
//! insertions (stale entries are skipped on pop). The first-order cost
//! table is maintained **incrementally**: each task with a placed
//! neighbor owns a pooled, positionally-indexed cost row over the free
//! list, updated by one bulk distance column per placement (an *edge
//! event* per unplaced neighbor), so placing a task folds one contiguous
//! row instead of rescanning its adjacency for every free processor.
//! The pre-rewrite full-rescan semantics live on as the differential
//! oracle [`crate::naive::NaiveTopoCentLb`].

use crate::obs;
use crate::{Mapper, Mapping};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use topomap_taskgraph::{TaskGraph, TaskId};
use topomap_topology::{stats::AvgDistTable, Topology};

/// Heap entry ordered by (communication key, then lower task id).
#[derive(Debug, PartialEq)]
pub(crate) struct Entry {
    pub(crate) key: f64,
    pub(crate) task: TaskId,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on key; ties -> lower task id first.
        self.key
            .partial_cmp(&other.key)
            .unwrap()
            .then_with(|| other.task.cmp(&self.task))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The most-communicating task (ties → lowest id): the seed selection,
/// shared with the naive oracle.
pub(crate) fn seed_task(tasks: &TaskGraph) -> TaskId {
    (0..tasks.num_tasks())
        .max_by(|&a, &b| {
            tasks
                .weighted_degree(a)
                .partial_cmp(&tasks.weighted_degree(b))
                .unwrap()
                .then(b.cmp(&a))
        })
        .expect("non-empty task graph")
}

const NONE: usize = usize::MAX;

/// Working state of one TopoCentLB run: heap selection plus pooled
/// positional cost rows kept in sync with the shrinking free list.
struct CentState<'a> {
    tasks: &'a TaskGraph,
    topo: &'a dyn Topology,
    proc_of: Vec<usize>,
    placed: Vec<bool>,
    /// Positional free list; every live cost row is indexed in sync.
    free: Vec<usize>,
    free_pos: Vec<usize>,
    /// comm_assigned[t] = total communication of t with placed tasks.
    comm_assigned: Vec<f64>,
    heap: BinaryHeap<Entry>,
    pushes: u64,
    pops: u64,
    stale: u64,
    row_events: u64,
    /// Pooled cost rows: rows[slot][i] = Σ over placed neighbors j of
    /// the owning task of c · d(free[i], P(j)), accumulated in
    /// placement order. A task owns a row iff it has a placed neighbor.
    rows: Vec<Vec<f64>>,
    free_slots: Vec<usize>,
    row_slot: Vec<usize>,
    live: Vec<TaskId>,
    live_pos: Vec<usize>,
    dist_scratch: Vec<u32>,
}

impl<'a> CentState<'a> {
    fn new(tasks: &'a TaskGraph, topo: &'a dyn Topology) -> Self {
        let n = tasks.num_tasks();
        let p = topo.num_nodes();
        CentState {
            tasks,
            topo,
            proc_of: vec![usize::MAX; n],
            placed: vec![false; n],
            free: (0..p).collect(),
            free_pos: (0..p).collect(),
            comm_assigned: vec![0f64; n],
            heap: BinaryHeap::with_capacity(n * 2),
            pushes: 0,
            pops: 0,
            stale: 0,
            row_events: 0,
            rows: Vec::new(),
            free_slots: Vec::new(),
            row_slot: vec![NONE; n],
            live: Vec::new(),
            live_pos: vec![NONE; n],
            dist_scratch: Vec::new(),
        }
    }

    /// One placement: take q, shrink every live row in sync, retire t's
    /// row, then fire an edge event (comm update + heap push + row
    /// update over one bulk distance column) per unplaced neighbor.
    fn place(&mut self, t: TaskId, q: usize) {
        self.proc_of[t] = q;
        self.placed[t] = true;
        if self.row_slot[t] != NONE {
            self.free_slots.push(self.row_slot[t]);
            self.row_slot[t] = NONE;
            let li = self.live_pos[t];
            let lastl = *self.live.last().unwrap();
            self.live.swap_remove(li);
            if lastl != t {
                self.live_pos[lastl] = li;
            }
            self.live_pos[t] = NONE;
        }
        let qi = self.free_pos[q];
        let lastq = *self.free.last().unwrap();
        self.free.swap_remove(qi);
        if lastq != q {
            self.free_pos[lastq] = qi;
        }
        self.free_pos[q] = NONE;
        for &u in &self.live {
            self.rows[self.row_slot[u]].swap_remove(qi);
        }

        let nbrs: Vec<(TaskId, f64)> = self
            .tasks
            .neighbors(t)
            .filter(|&(j, _)| !self.placed[j])
            .collect();
        if nbrs.is_empty() {
            return;
        }
        self.topo
            .distances_into(q, &self.free, &mut self.dist_scratch);
        for &(j, c) in &nbrs {
            self.comm_assigned[j] += c;
            self.heap.push(Entry {
                key: self.comm_assigned[j],
                task: j,
            });
            self.pushes += 1;
            self.row_events += 1;
            if self.row_slot[j] == NONE {
                let slot = if let Some(s) = self.free_slots.pop() {
                    s
                } else {
                    self.rows.push(Vec::new());
                    self.rows.len() - 1
                };
                self.row_slot[j] = slot;
                self.live_pos[j] = self.live.len();
                self.live.push(j);
                let row = &mut self.rows[slot];
                row.clear();
                row.extend(self.dist_scratch.iter().map(|&d| c * d as f64));
            } else {
                let row = &mut self.rows[self.row_slot[j]];
                for (v, &d) in row.iter_mut().zip(&self.dist_scratch) {
                    *v += c * d as f64;
                }
            }
        }
    }
}

/// The TopoCentLB mapping strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct TopoCentLb;

impl Mapper for TopoCentLb {
    fn map(&self, tasks: &TaskGraph, topo: &dyn Topology) -> Mapping {
        let n = tasks.num_tasks();
        let p = topo.num_nodes();
        assert!(n <= p, "need at least as many processors as tasks");
        let _map_span = obs::span("topocentlb.map");
        let mut s = CentState::new(tasks, topo);

        {
            let _seed_span = obs::span("topocentlb.seed");
            // First selection: the most communicating task overall; it goes
            // to the topology center (the processor with minimum average
            // distance — the natural seed for growing a compact region).
            let first = seed_task(tasks);
            let center = AvgDistTable::new(topo).center();
            s.place(first, center);
        }

        let _place_span = obs::span("topocentlb.place");
        for _ in 1..n {
            // Pop the max-communication unplaced task; skip stale entries.
            let t = loop {
                match s.heap.pop() {
                    Some(Entry { key, task })
                        if !s.placed[task] && key == s.comm_assigned[task] =>
                    {
                        s.pops += 1;
                        break Some(task);
                    }
                    Some(_) => {
                        s.pops += 1;
                        s.stale += 1;
                        continue;
                    }
                    None => break None,
                }
            };
            // Disconnected remainder: pick the lowest-id unplaced task.
            let t = t.unwrap_or_else(|| (0..n).find(|&x| !s.placed[x]).unwrap());

            // Place on the free processor minimizing first-order cost:
            // one contiguous fold of t's cost row (lowest-id tie-break).
            // No row means no placed neighbor — every free processor
            // costs 0, so the lowest id wins.
            let best_q = match s.row_slot[t] {
                NONE => s.free.iter().copied().min().unwrap(),
                slot => {
                    let row = &s.rows[slot];
                    let mut best_q = usize::MAX;
                    let mut best_cost = f64::INFINITY;
                    for (i, &cost) in row.iter().enumerate() {
                        let q = s.free[i];
                        if cost < best_cost || (cost == best_cost && q < best_q) {
                            best_cost = cost;
                            best_q = q;
                        }
                    }
                    best_q
                }
            };
            s.place(t, best_q);
        }
        obs::counter_add("topocentlb.heap_pushes", s.pushes);
        obs::counter_add("topocentlb.heap_pops", s.pops);
        obs::counter_add("topocentlb.stale_pops", s.stale);
        obs::counter_add("topocentlb.row_events", s.row_events);
        obs::counter_add("topocentlb.placements", n as u64);
        Mapping::new(s.proc_of, p)
    }

    fn name(&self) -> String {
        "TopoCentLB".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{metrics, RandomMap, TopoLb};
    use topomap_taskgraph::gen;
    use topomap_topology::Torus;

    #[test]
    fn maps_injectively() {
        let tasks = gen::stencil2d(5, 5, 10.0, false);
        let topo = Torus::torus_2d(5, 5);
        let m = TopoCentLb.map(&tasks, &topo);
        let mut seen = [false; 25];
        for t in 0..25 {
            assert!(!seen[m.proc_of(t)]);
            seen[m.proc_of(t)] = true;
        }
    }

    #[test]
    fn beats_random() {
        let tasks = gen::stencil2d(8, 8, 100.0, false);
        let topo = Torus::torus_2d(8, 8);
        let cent = metrics::hops_per_byte(&tasks, &topo, &TopoCentLb.map(&tasks, &topo));
        let rnd = metrics::hops_per_byte(&tasks, &topo, &RandomMap::new(1).map(&tasks, &topo));
        assert!(cent < 0.6 * rnd, "TopoCentLB {cent} vs random {rnd}");
    }

    #[test]
    fn close_to_topolb_but_typically_behind() {
        // Paper: "TopoCentLB also results in small values of hops-per-byte
        // ... about 10% higher than those from TopoLB" (§5.2.2). Allow a
        // loose band: within 2x of TopoLB and below random.
        let tasks = gen::stencil2d(8, 8, 100.0, false);
        let topo = Torus::torus_3d(4, 4, 4);
        let lb = metrics::hops_per_byte(&tasks, &topo, &TopoLb::default().map(&tasks, &topo));
        let cent = metrics::hops_per_byte(&tasks, &topo, &TopoCentLb.map(&tasks, &topo));
        assert!(cent <= 2.0 * lb, "TopoCentLB {cent} vs TopoLB {lb}");
    }

    #[test]
    fn handles_disconnected_tasks() {
        // Two disjoint rings: heap drains between components.
        let mut b = topomap_taskgraph::TaskGraph::builder(8);
        for i in 0..4usize {
            b.add_comm(i, (i + 1) % 4, 10.0);
            b.add_comm(4 + i, 4 + (i + 1) % 4, 10.0);
        }
        let tasks = b.build();
        let topo = Torus::torus_2d(3, 3);
        let m = TopoCentLb.map(&tasks, &topo);
        assert_eq!(m.num_tasks(), 8);
    }

    #[test]
    fn handles_edgeless_graph() {
        let tasks = topomap_taskgraph::TaskGraph::builder(4).build();
        let topo = Torus::torus_2d(2, 2);
        let m = TopoCentLb.map(&tasks, &topo);
        assert_eq!(m.num_tasks(), 4);
    }

    #[test]
    fn deterministic() {
        let tasks = gen::random_graph(40, 4.0, 1.0, 100.0, 9);
        let topo = Torus::torus_2d(7, 6);
        assert_eq!(TopoCentLb.map(&tasks, &topo), TopoCentLb.map(&tasks, &topo));
    }

    #[test]
    fn first_task_lands_on_center() {
        let tasks = gen::stencil2d(3, 3, 10.0, false);
        let topo = Torus::mesh_2d(3, 3);
        let m = TopoCentLb.map(&tasks, &topo);
        // Most-communicating task in a 3x3 open stencil is the center
        // task 4 (degree 4); mesh center is node 4.
        assert_eq!(m.proc_of(4), 4);
    }
}
