//! TopoCentLB — the simpler, faster strategy of §4.5.
//!
//! "In the first iteration, the most communicating task is selected and
//! mapped to a processor. In each subsequent iteration, the task that has
//! maximum total communication with already assigned tasks is selected.
//! It is mapped to the free physical processor where it incurs the least
//! total cost of communication (in terms of hop-bytes) with the already
//! assigned tasks." — i.e. first-order estimation with a
//! max-communication selection rule (Baba et al.'s (P3,P4) scheme).
//!
//! Implemented with the paper's heap: selection pops the max-key task in
//! O(log p); key updates for the popped task's neighbors are lazy
//! insertions (stale entries are skipped on pop), giving the stated
//! O(p·|Et|) total running time dominated by the processor scan.

use crate::obs;
use crate::{Mapper, Mapping};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use topomap_taskgraph::{TaskGraph, TaskId};
use topomap_topology::{stats::AvgDistTable, Topology};

/// Heap entry ordered by (communication key, then lower task id).
#[derive(Debug, PartialEq)]
struct Entry {
    key: f64,
    task: TaskId,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on key; ties -> lower task id first.
        self.key
            .partial_cmp(&other.key)
            .unwrap()
            .then_with(|| other.task.cmp(&self.task))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The TopoCentLB mapping strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct TopoCentLb;

impl Mapper for TopoCentLb {
    fn map(&self, tasks: &TaskGraph, topo: &dyn Topology) -> Mapping {
        let n = tasks.num_tasks();
        let p = topo.num_nodes();
        assert!(n <= p, "need at least as many processors as tasks");
        let _map_span = obs::span("topocentlb.map");

        let mut proc_of = vec![usize::MAX; n];
        let mut placed = vec![false; n];
        let mut free = vec![true; p];

        // comm_assigned[t] = total communication of t with placed tasks.
        let mut comm_assigned = vec![0f64; n];
        let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(n * 2);
        let (mut pushes, mut pops, mut stale) = (0u64, 0u64, 0u64);

        {
            let _seed_span = obs::span("topocentlb.seed");
            // First selection: the most communicating task overall; it goes
            // to the topology center (the processor with minimum average
            // distance — the natural seed for growing a compact region).
            let first = (0..n)
                .max_by(|&a, &b| {
                    tasks
                        .weighted_degree(a)
                        .partial_cmp(&tasks.weighted_degree(b))
                        .unwrap()
                        .then(b.cmp(&a))
                })
                .expect("non-empty task graph");
            let center = AvgDistTable::new(topo).center();
            proc_of[first] = center;
            placed[first] = true;
            free[center] = false;
            for (j, c) in tasks.neighbors(first) {
                comm_assigned[j] += c;
                heap.push(Entry {
                    key: comm_assigned[j],
                    task: j,
                });
                pushes += 1;
            }
        }

        let _place_span = obs::span("topocentlb.place");
        for _ in 1..n {
            // Pop the max-communication unplaced task; skip stale entries.
            let t = loop {
                match heap.pop() {
                    Some(Entry { key, task }) if !placed[task] && key == comm_assigned[task] => {
                        pops += 1;
                        break Some(task);
                    }
                    Some(_) => {
                        pops += 1;
                        stale += 1;
                        continue;
                    }
                    None => break None,
                }
            };
            // Disconnected remainder: pick the lowest-id unplaced task.
            let t = t.unwrap_or_else(|| (0..n).find(|&x| !placed[x]).unwrap());

            // Place on the free processor minimizing first-order cost.
            let mut best_q = usize::MAX;
            let mut best_cost = f64::INFINITY;
            for (q, &q_free) in free.iter().enumerate() {
                if !q_free {
                    continue;
                }
                let mut cost = 0.0;
                for (j, c) in tasks.neighbors(t) {
                    if placed[j] {
                        cost += c * topo.distance(q, proc_of[j]) as f64;
                    }
                }
                if cost < best_cost || (cost == best_cost && q < best_q) {
                    best_cost = cost;
                    best_q = q;
                }
            }
            proc_of[t] = best_q;
            placed[t] = true;
            free[best_q] = false;
            for (j, c) in tasks.neighbors(t) {
                if !placed[j] {
                    comm_assigned[j] += c;
                    heap.push(Entry {
                        key: comm_assigned[j],
                        task: j,
                    });
                    pushes += 1;
                }
            }
        }
        obs::counter_add("topocentlb.heap_pushes", pushes);
        obs::counter_add("topocentlb.heap_pops", pops);
        obs::counter_add("topocentlb.stale_pops", stale);
        obs::counter_add("topocentlb.placements", n as u64);
        Mapping::new(proc_of, p)
    }

    fn name(&self) -> String {
        "TopoCentLB".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{metrics, RandomMap, TopoLb};
    use topomap_taskgraph::gen;
    use topomap_topology::Torus;

    #[test]
    fn maps_injectively() {
        let tasks = gen::stencil2d(5, 5, 10.0, false);
        let topo = Torus::torus_2d(5, 5);
        let m = TopoCentLb.map(&tasks, &topo);
        let mut seen = [false; 25];
        for t in 0..25 {
            assert!(!seen[m.proc_of(t)]);
            seen[m.proc_of(t)] = true;
        }
    }

    #[test]
    fn beats_random() {
        let tasks = gen::stencil2d(8, 8, 100.0, false);
        let topo = Torus::torus_2d(8, 8);
        let cent = metrics::hops_per_byte(&tasks, &topo, &TopoCentLb.map(&tasks, &topo));
        let rnd = metrics::hops_per_byte(&tasks, &topo, &RandomMap::new(1).map(&tasks, &topo));
        assert!(cent < 0.6 * rnd, "TopoCentLB {cent} vs random {rnd}");
    }

    #[test]
    fn close_to_topolb_but_typically_behind() {
        // Paper: "TopoCentLB also results in small values of hops-per-byte
        // ... about 10% higher than those from TopoLB" (§5.2.2). Allow a
        // loose band: within 2x of TopoLB and below random.
        let tasks = gen::stencil2d(8, 8, 100.0, false);
        let topo = Torus::torus_3d(4, 4, 4);
        let lb = metrics::hops_per_byte(&tasks, &topo, &TopoLb::default().map(&tasks, &topo));
        let cent = metrics::hops_per_byte(&tasks, &topo, &TopoCentLb.map(&tasks, &topo));
        assert!(cent <= 2.0 * lb, "TopoCentLB {cent} vs TopoLB {lb}");
    }

    #[test]
    fn handles_disconnected_tasks() {
        // Two disjoint rings: heap drains between components.
        let mut b = topomap_taskgraph::TaskGraph::builder(8);
        for i in 0..4usize {
            b.add_comm(i, (i + 1) % 4, 10.0);
            b.add_comm(4 + i, 4 + (i + 1) % 4, 10.0);
        }
        let tasks = b.build();
        let topo = Torus::torus_2d(3, 3);
        let m = TopoCentLb.map(&tasks, &topo);
        assert_eq!(m.num_tasks(), 8);
    }

    #[test]
    fn handles_edgeless_graph() {
        let tasks = topomap_taskgraph::TaskGraph::builder(4).build();
        let topo = Torus::torus_2d(2, 2);
        let m = TopoCentLb.map(&tasks, &topo);
        assert_eq!(m.num_tasks(), 4);
    }

    #[test]
    fn deterministic() {
        let tasks = gen::random_graph(40, 4.0, 1.0, 100.0, 9);
        let topo = Torus::torus_2d(7, 6);
        assert_eq!(TopoCentLb.map(&tasks, &topo), TopoCentLb.map(&tasks, &topo));
    }

    #[test]
    fn first_task_lands_on_center() {
        let tasks = gen::stencil2d(3, 3, 10.0, false);
        let topo = Torus::mesh_2d(3, 3);
        let m = TopoCentLb.map(&tasks, &topo);
        // Most-communicating task in a 3x3 open stencil is the center
        // task 4 (degree 4); mesh center is node 4.
        assert_eq!(m.proc_of(4), 4);
    }
}
