//! # topomap-core
//!
//! The paper's primary contribution: topology-aware task-mapping
//! heuristics that minimize **hop-bytes** — the total inter-processor
//! communication volume weighted by the distance it travels:
//!
//! ```text
//! HB(Gt, Gp, P) = Σ_{e_ab ∈ Et} c_ab · d_p(P(a), P(b))
//! ```
//!
//! Provided mappers (all implement [`Mapper`]):
//!
//! - [`TopoLb`] — Algorithm 1 of the paper: each iteration places the task
//!   whose placement is most *critical* (maximum gain `FAvg − FMin` of its
//!   estimation function) on the free processor where it costs least. The
//!   estimation function comes in three [`EstimationOrder`]s (§4.3);
//!   the paper ships the second order for its O(p·|Et|) running time.
//! - [`TopoCentLb`] — the simpler heap-based strategy of §4.5: pick the
//!   task with maximum communication to already-placed tasks (first-order
//!   estimation), place it where that communication is cheapest. This is
//!   the (P3,P4) scheme of Baba et al.
//! - [`RefineTopoLb`] — the §5.2.3 refiner: pairwise swaps accepted only
//!   when they reduce hop-bytes, applied after an initial mapping.
//! - [`RandomMap`] — the random-placement baseline.
//! - [`IdentityMap`] — the "simple isomorphism mapping" used as the optimal
//!   mapping in Table 1 (valid when the task pattern is a subgraph of the
//!   topology under identity numbering).
//!
//! Metrics live in [`metrics`]; the two-phase partition-then-map driver of
//! §4 lives in [`pipeline`].
//!
//! ```
//! use topomap_core::{Mapper, TopoLb, RandomMap, metrics};
//! use topomap_taskgraph::gen;
//! use topomap_topology::Torus;
//!
//! let tasks = gen::stencil2d(8, 8, 1024.0, false); // 2D-mesh pattern
//! let torus = Torus::torus_2d(8, 8);
//! let topo_lb = TopoLb::default().map(&tasks, &torus);
//! let random = RandomMap::new(42).map(&tasks, &torus);
//! let hpb_lb = metrics::hops_per_byte(&tasks, &torus, &topo_lb);
//! let hpb_rand = metrics::hops_per_byte(&tasks, &torus, &random);
//! assert!(hpb_lb < hpb_rand); // topology-awareness wins
//! ```

pub mod anneal;
pub mod contention;
pub mod estimation;
#[doc(hidden)]
pub mod estimation_naive;
pub mod estimation_uniform;
pub mod genetic;
pub mod geom;
pub mod hierarchy;
pub mod linear;
pub mod metrics;
#[doc(hidden)]
pub mod naive;
pub mod obs;
pub mod optimal;
pub mod par;
pub mod pipeline;
pub mod random;
pub mod refine;
pub mod topocentlb;
pub mod topolb;

pub use anneal::SimulatedAnnealingMap;
pub use contention::{ContentionRefine, ContentionReport, SimObservation};
pub use estimation::EstimationOrder;
pub use genetic::GeneticMap;
pub use geom::{synthesize_coords, Curve, GeomError, RcbMap, SfcMap};
pub use hierarchy::{auto_arities, Descent, HierMapper};
pub use linear::LinearOrderMap;
pub use optimal::IdentityMap;
pub use par::{Parallelism, Threads};
pub use random::RandomMap;
pub use refine::RefineTopoLb;
pub use topocentlb::TopoCentLb;
pub use topolb::TopoLb;

use topomap_taskgraph::{TaskGraph, TaskId};
use topomap_topology::{NodeId, Topology};

/// A task mapping `P : V_t → V_p` (injective; every task on its own
/// processor — the phase-2 object of the paper, where the task graph has
/// been coalesced to at most `p` groups).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    proc_of: Vec<NodeId>,
    /// Inverse: `task_on[p]` = task on processor `p`, or `usize::MAX`.
    task_on: Vec<usize>,
}

impl Mapping {
    /// Build from a task→processor vector. Panics if two tasks share a
    /// processor or a processor id is out of range.
    pub fn new(proc_of: Vec<NodeId>, num_procs: usize) -> Self {
        assert!(
            proc_of.len() <= num_procs,
            "more tasks ({}) than processors ({})",
            proc_of.len(),
            num_procs
        );
        let mut task_on = vec![usize::MAX; num_procs];
        for (t, &p) in proc_of.iter().enumerate() {
            assert!(p < num_procs, "processor id {p} out of range");
            assert!(
                task_on[p] == usize::MAX,
                "processor {p} assigned twice (tasks {} and {t})",
                task_on[p]
            );
            task_on[p] = t;
        }
        Mapping { proc_of, task_on }
    }

    /// Processor hosting task `t`.
    #[inline]
    pub fn proc_of(&self, t: TaskId) -> NodeId {
        self.proc_of[t]
    }

    /// Task hosted on processor `p`, if any.
    #[inline]
    pub fn task_on(&self, p: NodeId) -> Option<TaskId> {
        match self.task_on[p] {
            usize::MAX => None,
            t => Some(t),
        }
    }

    pub fn num_tasks(&self) -> usize {
        self.proc_of.len()
    }

    pub fn num_procs(&self) -> usize {
        self.task_on.len()
    }

    /// The raw task→processor slice.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.proc_of
    }

    /// Swap the processors of two tasks (used by the refiner).
    pub fn swap_tasks(&mut self, a: TaskId, b: TaskId) {
        if a == b {
            return;
        }
        let (pa, pb) = (self.proc_of[a], self.proc_of[b]);
        self.proc_of[a] = pb;
        self.proc_of[b] = pa;
        self.task_on[pa] = b;
        self.task_on[pb] = a;
    }

    /// Move task `t` to a currently-free processor `p`. Panics if `p` is
    /// occupied by a different task.
    pub fn move_task(&mut self, t: TaskId, p: NodeId) {
        let cur = self.proc_of[t];
        if cur == p {
            return;
        }
        assert!(
            self.task_on[p] == usize::MAX,
            "processor {p} is occupied; use swap_tasks"
        );
        self.task_on[cur] = usize::MAX;
        self.task_on[p] = t;
        self.proc_of[t] = p;
    }
}

/// A phase-2 mapping strategy: place the (already coalesced) task graph on
/// the topology.
pub trait Mapper {
    /// Map `tasks` onto `topo`. Requires `tasks.num_tasks() <=
    /// topo.num_nodes()`; implementations must return an injective
    /// mapping covering every task.
    fn map(&self, tasks: &TaskGraph, topo: &dyn Topology) -> Mapping;

    /// Strategy name for experiment output (e.g. `"TopoLB"`).
    fn name(&self) -> String;
}

/// Boxed mappers are mappers too, so parsed/dynamic strategies compose
/// with generic wrappers like [`RefineTopoLb`] (e.g. `--init sfc`).
impl Mapper for Box<dyn Mapper> {
    fn map(&self, tasks: &TaskGraph, topo: &dyn Topology) -> Mapping {
        (**self).map(tasks, topo)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_inverse_consistency() {
        let m = Mapping::new(vec![2, 0, 3], 4);
        assert_eq!(m.proc_of(0), 2);
        assert_eq!(m.task_on(2), Some(0));
        assert_eq!(m.task_on(1), None);
        assert_eq!(m.num_tasks(), 3);
        assert_eq!(m.num_procs(), 4);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn duplicate_processor_rejected() {
        Mapping::new(vec![1, 1], 3);
    }

    #[test]
    #[should_panic(expected = "more tasks")]
    fn too_many_tasks_rejected() {
        Mapping::new(vec![0, 1, 2], 2);
    }

    #[test]
    fn swap_updates_both_directions() {
        let mut m = Mapping::new(vec![0, 1, 2], 3);
        m.swap_tasks(0, 2);
        assert_eq!(m.proc_of(0), 2);
        assert_eq!(m.proc_of(2), 0);
        assert_eq!(m.task_on(0), Some(2));
        assert_eq!(m.task_on(2), Some(0));
        m.swap_tasks(1, 1); // no-op
        assert_eq!(m.proc_of(1), 1);
    }

    #[test]
    fn move_to_free_processor() {
        let mut m = Mapping::new(vec![0, 1], 4);
        m.move_task(0, 3);
        assert_eq!(m.proc_of(0), 3);
        assert_eq!(m.task_on(0), None);
        assert_eq!(m.task_on(3), Some(0));
        m.move_task(0, 3); // moving to own proc is a no-op
    }

    #[test]
    #[should_panic(expected = "occupied")]
    fn move_to_occupied_panics() {
        let mut m = Mapping::new(vec![0, 1], 4);
        m.move_task(0, 1);
    }
}
