//! Hierarchical multisection mapping — the paper's future-work direction
//! (§6: "a distributed approach toward keeping communication localized in
//! a neighborhood may be needed for scalability"; hybrid semi-distributed
//! approaches) implemented over an explicit hardware hierarchy.
//!
//! [`HierMapper`] decomposes one `p`-processor mapping problem down a
//! [`Hierarchy`] `H = a1:…:al`:
//!
//! 1. **Descent** groups tasks into innermost containers, either
//!    bottom-up ([`Descent::Coarsen`], the default: heavy-edge-matching
//!    coarsening capped at `a1`, then an incremental TopoLB + realized
//!    -cost polish places the cluster graph on the leaf blocks) or
//!    top-down ([`Descent::Multisection`]: `ai`-way splits per level with
//!    sibling placement, so the expensive outer cuts are minimized
//!    first).
//! 2. **Leaf sub-mapping**: each innermost container (≤ `a1` tasks on
//!    `a1` processors) is an independent table-driven [`Unit`] job —
//!    attraction-ordered greedy growth plus local improvement sweeps —
//!    dispatched on the `par` pool via one `map_chunks` region. Leaves
//!    only read shared immutable state and write disjoint tasks, so the
//!    merged result is bit-identical for every thread count.
//! 3. **Cross-leaf refinement**: Jacobi-style passes that pair up the
//!    leaves currently exchanging the most bytes and sweep each pair as
//!    one [`Unit`] (swaps may cross the pair's leaf boundary), reading a
//!    pass snapshot for outside neighbors. Per-unit work depends only on
//!    the snapshot, so parallel == serial exactly; converged pairs are
//!    remembered and the loop stops when no discontent pair remains.
//!
//! Table work drops from the flat kernels' O(p²)-ish to
//! O(coarsen + Σ_leaves a1² ·  d̄) with the leaf and refinement terms
//! embarrassingly parallel — exactly the shape the PR-1 pool was built
//! for.

use crate::par::Executor;
use crate::{obs, EstimationOrder, Mapper, Mapping, Parallelism, TopoLb};
use topomap_partition::Multisection;
use topomap_taskgraph::{TaskGraph, TaskId};
use topomap_topology::{CachedTopology, Hierarchy, NodeId, Topology, Torus};

/// How tasks are grouped into innermost containers before the parallel
/// leaf sub-mappings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Descent {
    /// Bottom-up (default): heavy-edge-matching coarsening with cluster
    /// size capped at `a1`, then one serial incremental TopoLB maps the
    /// `p/a1` clusters onto the leaf-block representatives. Clusters are
    /// compact by construction and the coarse placement reuses the
    /// paper's strongest kernel at 1/a1 of the problem size.
    Coarsen,
    /// Top-down k-way multisection ([`Multisection`]): split into `ai`
    /// parts per level (outermost cuts first), then place siblings and
    /// propagate terminals per level.
    Multisection,
}

/// Recursive partition-and-map over an explicit hardware hierarchy, with
/// the leaf sub-mappings dispatched in parallel (deterministically).
#[derive(Debug, Clone)]
pub struct HierMapper {
    /// The hardware hierarchy (its processor count must match the machine
    /// handed to [`Mapper::map`]).
    pub hier: Hierarchy,
    /// Machine node at each hierarchy position (`None` = identity — the
    /// machine is numbered hierarchically already, e.g. a fat-tree).
    pub pe_order: Option<Vec<NodeId>>,
    /// Leaf-grouping scheme.
    pub descent: Descent,
    /// Cross-leaf Jacobi swap passes after the leaf sub-mappings.
    pub refine_passes: usize,
    /// Intra-leaf refine sweeps inside each leaf job.
    pub leaf_refine_passes: usize,
    /// Thread configuration for the leaf and refinement fan-outs.
    pub par: Parallelism,
}

impl HierMapper {
    /// Identity processor layout: hierarchy position `q` is machine node
    /// `q`. Right for fat-trees and for machines that are themselves
    /// numbered hierarchically.
    pub fn new(hier: Hierarchy) -> Self {
        HierMapper {
            hier,
            pe_order: None,
            descent: Descent::Coarsen,
            refine_passes: 4,
            leaf_refine_passes: 2,
            par: Parallelism::default(),
        }
    }

    /// Explicit layout: `pe_order[q]` = machine node at position `q`.
    pub fn with_layout(hier: Hierarchy, pe_order: Vec<NodeId>) -> Self {
        assert_eq!(pe_order.len(), hier.num_nodes(), "layout length mismatch");
        HierMapper {
            pe_order: Some(pe_order),
            ..Self::new(hier)
        }
    }

    /// Derive a hierarchy for a torus/mesh with auto-chosen arities
    /// ([`auto_arities`]) and the block layout from
    /// [`Hierarchy::factor_torus`].
    pub fn for_torus(t: &Torus) -> Result<Self, String> {
        Self::for_torus_with(t, &auto_arities(t.num_nodes()))
    }

    /// Derive a hierarchy for a torus/mesh with the given arities.
    pub fn for_torus_with(t: &Torus, arities: &[usize]) -> Result<Self, String> {
        let (hier, pe_order) = Hierarchy::factor_torus(t, arities)?;
        Ok(Self::with_layout(hier, pe_order))
    }

    /// Builder: set the thread configuration.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// Machine node at hierarchy position `q`.
    #[inline]
    fn pe(&self, q: usize) -> NodeId {
        match &self.pe_order {
            Some(v) => v[q],
            None => q,
        }
    }

    /// Bottom-up leaf grouping: heavy-edge-matching coarsening (cluster
    /// size capped at `a1`, merges heaviest edges first) until at most
    /// `p/a1` clusters remain, then a serial incremental TopoLB places
    /// the cluster graph on the leaf-block representative processors.
    /// Returns the leaf index of every task.
    fn coarsen_to_leaves(&self, tasks: &TaskGraph, topo: &dyn Topology) -> Vec<usize> {
        let n = tasks.num_tasks();
        let a1 = self.hier.arities()[0];
        let leaves = self.hier.num_nodes() / a1;
        let mut cluster_of: Vec<usize> = (0..n).collect();
        let mut count = n;
        let mut sizes = vec![1usize; n];
        let mut coarse = tasks.clone();
        {
            let _span = obs::span("hier.coarsen");
            while count > leaves {
                // One matching pass over the current cluster graph,
                // stopping as soon as enough merges are queued to hit
                // the target count.
                let needed = count - leaves;
                let mut match_to = vec![usize::MAX; count];
                let mut merged = 0usize;
                for c in 0..count {
                    if merged >= needed {
                        break;
                    }
                    if match_to[c] != usize::MAX {
                        continue;
                    }
                    let best = coarse
                        .neighbors(c)
                        .filter(|&(u, _)| {
                            u != c && match_to[u] == usize::MAX && sizes[c] + sizes[u] <= a1
                        })
                        .max_by(|x, y| x.1.partial_cmp(&y.1).unwrap().then(y.0.cmp(&x.0)));
                    if let Some((u, _)) = best {
                        match_to[c] = u;
                        match_to[u] = c;
                        merged += 1;
                    }
                }
                if merged == 0 {
                    // Disconnected or saturated: force-pair smallest
                    // with the largest partner that still fits.
                    let mut order: Vec<usize> = (0..count).collect();
                    order.sort_by_key(|&c| (sizes[c], c));
                    let (mut lo, mut hi) = (0usize, count - 1);
                    while lo < hi && merged < needed {
                        let (c, u) = (order[lo], order[hi]);
                        if sizes[c] + sizes[u] <= a1 {
                            match_to[c] = u;
                            match_to[u] = c;
                            merged += 1;
                            lo += 1;
                            hi -= 1;
                        } else {
                            hi -= 1; // partner too big; try a smaller one
                        }
                    }
                    if merged == 0 {
                        break; // no pair fits; bin-pack fallback below
                    }
                }
                let mut new_id = vec![usize::MAX; count];
                let mut next = 0usize;
                for c in 0..count {
                    if new_id[c] != usize::MAX {
                        continue;
                    }
                    new_id[c] = next;
                    if match_to[c] != usize::MAX {
                        new_id[match_to[c]] = next;
                    }
                    next += 1;
                }
                let mut new_sizes = vec![0usize; next];
                for c in 0..count {
                    new_sizes[new_id[c]] += sizes[c];
                }
                for cl in cluster_of.iter_mut() {
                    *cl = new_id[*cl];
                }
                coarse = tasks.coalesce(&cluster_of, next);
                sizes = new_sizes;
                count = next;
            }
            if count > leaves {
                // Matching stalled above the target (all pairs would
                // overflow `a1`). Bin-pack clusters into `leaves` bins of
                // capacity `a1`, splitting any cluster that no longer
                // fits whole — guaranteed to succeed since `n <= p`.
                let mut bin_of = vec![usize::MAX; count];
                let mut load = vec![0usize; leaves];
                let mut order: Vec<usize> = (0..count).collect();
                order.sort_by_key(|&c| (std::cmp::Reverse(sizes[c]), c));
                for &c in &order {
                    if let Some(b) = (0..leaves).find(|&b| load[b] + sizes[c] <= a1) {
                        bin_of[c] = b;
                        load[b] += sizes[c];
                    }
                }
                for cl in cluster_of.iter_mut() {
                    *cl = bin_of[*cl]; // split clusters become MAX for now
                }
                for cl in cluster_of.iter_mut() {
                    if *cl == usize::MAX {
                        let b = (0..leaves).find(|&b| load[b] < a1).expect("n <= p");
                        load[b] += 1;
                        *cl = b;
                    }
                }
                count = leaves;
                coarse = tasks.coalesce(&cluster_of, count);
            }
            if obs::enabled() {
                obs::counter_add("hier.coarsen.clusters", count as u64);
            }
        }
        // Place the cluster graph on the leaf-block representatives: an
        // incremental TopoLB over the restricted (origins-only) metric.
        // On small, highly symmetric cluster graphs a single estimation
        // order can tie-break into a twisted embedding that later
        // pairwise swaps provably cannot undo, so there all three orders
        // are tried and scored exactly (the coarse graph is tiny); the
        // best start is then polished with cluster-level swap sweeps via
        // [`Unit`] — one such swap exchanges whole blocks, exactly the
        // repair task-level swaps cannot express later.
        let _span = obs::span("hier.coarse_map");
        let origins: Vec<NodeId> = (0..leaves).map(|g| self.pe(g * a1)).collect();
        let blocks = CachedTopology::new(Restriction {
            topo,
            nodes: &origins,
        });
        let score = |m: &Mapping| -> f64 {
            coarse
                .edges()
                .map(|(x, y, w)| w * blocks.distance(m.proc_of(x), m.proc_of(y)) as f64)
                .sum()
        };
        let orders: &[EstimationOrder] = if count <= 32 {
            &[
                EstimationOrder::Second,
                EstimationOrder::First,
                EstimationOrder::Third,
            ]
        } else {
            &[EstimationOrder::Second]
        };
        let best = orders
            .iter()
            .map(|&ord| {
                let m = TopoLb::with_parallelism(ord, Parallelism::serial()).map(&coarse, &blocks);
                (score(&m), m)
            })
            .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
            .expect("non-empty portfolio")
            .1;
        let mut local_of = vec![usize::MAX; count];
        let no_ext = |_: TaskId| -> NodeId { unreachable!("cluster graph has no external tasks") };
        let mut unit = Unit::new(
            &coarse,
            topo,
            (0..count).collect(),
            origins,
            &mut local_of,
            &no_ext,
        );
        for cl in 0..count {
            unit.slot_of[cl] = best.proc_of(cl);
            unit.occupant[best.proc_of(cl)] = cl;
        }
        unit.sweeps(8);
        let mut assign: Vec<usize> = unit.slot_of.clone();
        // Origin distance is orientation-blind: on a wrap-heavy block
        // grid many twisted embeddings tie with the straight one, yet
        // the (translation-only) leaf placements can align their
        // boundaries only under the straight one. For small coarse
        // instances, polish under the *realized* objective instead:
        // predict every task's final node as `block origin + canonical
        // growth slot` — the same intra-only growth the leaf phase runs
        // — and hill-climb whole-cluster exchanges on that. Gated to
        // `count <= 32` where a polish round is far cheaper than the
        // quality it recovers; larger coarse graphs have enough distance
        // diversity that the origin proxy already separates embeddings.
        if (2..=32).contains(&count) {
            let mut slot = vec![0usize; n];
            let mut members: Vec<Vec<TaskId>> = vec![Vec::new(); count];
            for (t, &cl) in cluster_of.iter().enumerate() {
                members[cl].push(t);
            }
            let nodes0: Vec<NodeId> = (0..a1).map(|o| self.pe(o)).collect();
            let origin0 = self.pe(0);
            let anywhere = |_: TaskId| origin0;
            let mut scratch = vec![usize::MAX; n];
            for ms in &members {
                if ms.is_empty() {
                    continue;
                }
                let mut u = Unit::new(
                    tasks,
                    topo,
                    ms.clone(),
                    nodes0.clone(),
                    &mut scratch,
                    &anywhere,
                );
                u.place_greedy(false);
                for (i, &t) in u.ms.iter().enumerate() {
                    slot[t] = u.slot_of[i];
                }
            }
            let pred = |leaf: usize, t: TaskId| self.pe(leaf * a1 + slot[t]);
            // Cross-cluster edges, also bucketed per cluster for deltas.
            let mut incident: Vec<Vec<usize>> = vec![Vec::new(); count];
            let cross: Vec<(TaskId, TaskId, f64)> = tasks
                .edges()
                .filter(|&(x, y, _)| cluster_of[x] != cluster_of[y])
                .collect();
            for (e, &(x, y, _)) in cross.iter().enumerate() {
                incident[cluster_of[x]].push(e);
                incident[cluster_of[y]].push(e);
            }
            let cost_of = |edges: &[usize], assign: &[usize]| -> f64 {
                edges
                    .iter()
                    .map(|&e| {
                        let (x, y, w) = cross[e];
                        let (px, py) = (
                            pred(assign[cluster_of[x]], x),
                            pred(assign[cluster_of[y]], y),
                        );
                        w * topo.distance(px, py) as f64
                    })
                    .sum()
            };
            for _round in 0..4 * count {
                let occupied: std::collections::BTreeSet<usize> = assign.iter().copied().collect();
                let free: Vec<usize> = (0..leaves).filter(|g| !occupied.contains(g)).collect();
                let mut best: (f64, usize, usize, bool) = (-1e-9, 0, 0, false);
                for ca in 0..count {
                    // Exchange with another cluster's leaf...
                    for cb in (ca + 1)..count {
                        let mut edges: Vec<usize> = incident[ca]
                            .iter()
                            .chain(incident[cb].iter())
                            .copied()
                            .collect();
                        edges.sort_unstable();
                        edges.dedup();
                        let before = cost_of(&edges, &assign);
                        let mut trial = assign.clone();
                        trial.swap(ca, cb);
                        let d = cost_of(&edges, &trial) - before;
                        if d < best.0 {
                            best = (d, ca, cb, false);
                        }
                    }
                    // ...or relocation onto an unused leaf block.
                    for &f in &free {
                        let before = cost_of(&incident[ca], &assign);
                        let mut trial = assign.clone();
                        trial[ca] = f;
                        let d = cost_of(&incident[ca], &trial) - before;
                        if d < best.0 {
                            best = (d, ca, f, true);
                        }
                    }
                }
                let (d, a, b, relocate) = best;
                if d >= -1e-9 {
                    break;
                }
                if relocate {
                    assign[a] = b;
                } else {
                    assign.swap(a, b);
                }
            }
        }
        // Cluster `cl` sits on slot (= leaf index) `assign[cl]`.
        cluster_of.iter().map(|&cl| assign[cl]).collect()
    }

    /// Multisection descent + per-level sibling placement. Returns the
    /// leaf index of every task (leaf `g` owns positions
    /// `[g·a1, (g+1)·a1)`).
    fn partition_to_leaves(&self, tasks: &TaskGraph, topo: &dyn Topology) -> Vec<usize> {
        let _span = obs::span("hier.partition");
        let n = tasks.num_tasks();
        let arities = self.hier.arities();
        let ms = Multisection::new(arities.to_vec());
        let mut group_of = vec![0usize; n];
        let mut num_groups = 1usize;
        let prof = obs::enabled();
        for level in (1..arities.len()).rev() {
            let lvl_span = prof.then(|| obs::span(&format!("hier.partition.l{level}")));
            group_of = ms.split_level(tasks, &group_of, num_groups, level);
            let a = arities[level];
            // Positions covered by one child slot at this level.
            let child_block = self.hier.block(level - 1);
            self.place_siblings(tasks, topo, &mut group_of, num_groups, a, child_block);
            num_groups *= a;
            self.propagate_terminals(tasks, topo, &mut group_of, num_groups, a, child_block);
            if prof {
                obs::counter_add(&format!("hier.level.{level}.groups"), num_groups as u64);
            }
            drop(lvl_span);
        }
        group_of
    }

    /// Relabel the `a` children of every parent group so that heavily
    /// communicating siblings land on nearby child slots: a serial TopoLB
    /// over the slot-representative processors (first machine node of
    /// each child block), per parent.
    fn place_siblings(
        &self,
        tasks: &TaskGraph,
        topo: &dyn Topology,
        group_of: &mut [usize],
        num_parents: usize,
        a: usize,
        child_block: usize,
    ) {
        if a == 1 {
            return;
        }
        // Cross-child edge weight per parent, one pass over all edges.
        let mut mats = vec![0f64; num_parents * a * a];
        for (u, v, w) in tasks.edges() {
            let (gu, gv) = (group_of[u], group_of[v]);
            if gu / a == gv / a && gu != gv {
                let parent = gu / a;
                let (ju, jv) = (gu % a, gv % a);
                mats[parent * a * a + ju * a + jv] += w;
                mats[parent * a * a + jv * a + ju] += w;
            }
        }
        let inner = TopoLb::with_parallelism(EstimationOrder::Second, Parallelism::serial());
        let mut perm_of_parent: Vec<Option<Vec<usize>>> = vec![None; num_parents];
        for parent in 0..num_parents {
            let mat = &mats[parent * a * a..(parent + 1) * a * a];
            if mat.iter().all(|&w| w == 0.0) {
                continue; // nothing to localize; keep slot order
            }
            let mut b = TaskGraph::builder(a);
            for j in 0..a {
                for k in (j + 1)..a {
                    let w = mat[j * a + k];
                    if w > 0.0 {
                        b.add_comm(j, k, w);
                    }
                }
            }
            let part_graph = b.build();
            let reps: Vec<NodeId> = (0..a)
                .map(|s| self.pe((parent * a + s) * child_block))
                .collect();
            let slots = Restriction { topo, nodes: &reps };
            let m = inner.map(&part_graph, &slots);
            perm_of_parent[parent] = Some((0..a).map(|j| m.proc_of(j)).collect());
        }
        for g in group_of.iter_mut() {
            let parent = *g / a;
            if let Some(perm) = &perm_of_parent[parent] {
                *g = parent * a + perm[*g % a];
            }
        }
    }

    /// Terminal propagation (Dunlop–Kernighan): after a level's split,
    /// the cut only counted edges *inside* each parent — a boundary task
    /// may sit in the wrong child relative to its neighbors in other
    /// groups. Greedily move such tasks to the sibling child whose block
    /// is cheapest against all their neighbors' blocks (every group
    /// charged at its block-origin processor), most negative gain first,
    /// capped at `child_block` tasks per child. Deterministic: fixed
    /// scan order, strict-improvement ties to the lowest child id.
    fn propagate_terminals(
        &self,
        tasks: &TaskGraph,
        topo: &dyn Topology,
        group_of: &mut [usize],
        num_groups: usize,
        a: usize,
        child_block: usize,
    ) {
        if a == 1 {
            return;
        }
        let mut sizes = vec![0usize; num_groups];
        for &g in group_of.iter() {
            sizes[g] += 1;
        }
        let gpos = |g: usize| self.pe(g * child_block);
        // Exact change of the proxy objective for moving `t` into child
        // `c` (its own group counted at `c`; everyone else where they
        // currently are, a neighbor in `c` becoming distance 0).
        let cost_at = |group_of: &[usize], t: TaskId, c: usize| -> f64 {
            tasks
                .neighbors(t)
                .map(|(u, w)| w * topo.distance(gpos(c), gpos(group_of[u])) as f64)
                .sum()
        };
        for _sweep in 0..4 {
            // Best sibling child for every boundary task.
            let mut wishes: Vec<(f64, TaskId, usize)> = Vec::new();
            for (t, &g) in group_of.iter().enumerate() {
                if !tasks.neighbors(t).any(|(u, _)| group_of[u] != g) {
                    continue; // interior task; no move can help
                }
                let cur = cost_at(group_of, t, g);
                let parent = g / a;
                let mut best = (cur, g);
                for c in parent * a..(parent + 1) * a {
                    if c != g {
                        let alt = cost_at(group_of, t, c);
                        if alt < best.0 - 1e-12 {
                            best = (alt, c);
                        }
                    }
                }
                if best.1 != g {
                    wishes.push((best.0 - cur, t, best.1));
                }
            }
            wishes.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap().then(x.1.cmp(&y.1)));
            let mut changed = 0usize;
            // Moves, where a child has slack (tasks < processors).
            let mut unplaced: Vec<(TaskId, usize)> = Vec::new();
            for &(_, t, c) in &wishes {
                let g = group_of[t];
                if g == c {
                    continue; // satisfied by an earlier exchange
                }
                if sizes[c] < child_block {
                    group_of[t] = c;
                    sizes[g] -= 1;
                    sizes[c] += 1;
                    changed += 1;
                } else {
                    unplaced.push((t, c));
                }
            }
            // Exchanges: pair a task wanting c1 -> c2 with one wanting
            // c2 -> c1 (both lists already sorted most-eager first) and
            // swap when the exact combined delta is an improvement.
            let mut by_pair: std::collections::BTreeMap<
                (usize, usize),
                (Vec<TaskId>, Vec<TaskId>),
            > = std::collections::BTreeMap::new();
            for (t, c) in unplaced {
                let g = group_of[t];
                if g == c {
                    continue;
                }
                let e = by_pair.entry((g.min(c), g.max(c))).or_default();
                if g < c {
                    e.0.push(t);
                } else {
                    e.1.push(t);
                }
            }
            for ((c1, c2), (xs, ys)) in by_pair {
                for (&x, &y) in xs.iter().zip(ys.iter()) {
                    if group_of[x] != c1 || group_of[y] != c2 {
                        continue; // stale
                    }
                    let before = cost_at(group_of, x, c1) + cost_at(group_of, y, c2);
                    group_of[x] = c2;
                    group_of[y] = c1;
                    let after = cost_at(group_of, x, c2) + cost_at(group_of, y, c1);
                    if after - before < -1e-12 {
                        changed += 1;
                    } else {
                        group_of[x] = c1;
                        group_of[y] = c2;
                    }
                }
            }
            if changed == 0 {
                break;
            }
        }
    }
}

/// Auto-chosen hierarchy arities for `p` processors: an innermost level of
/// up to 16 cores, middle levels near 16, and whatever small remainder
/// tops it off. Degenerates gracefully (a prime `p` yields a single-level
/// hierarchy, i.e. flat TopoLB).
pub fn auto_arities(p: usize) -> Vec<usize> {
    assert!(p > 0);
    let a1 = (1..=16usize.min(p))
        .rev()
        .find(|&a| p.is_multiple_of(a))
        .unwrap_or(1);
    let mut arities = vec![a1];
    let mut rem = p / a1;
    while rem > 32 {
        // Divisor of the remainder in [2, 32] closest to 16.
        let f = (2..=32)
            .filter(|&f| rem.is_multiple_of(f))
            .min_by_key(|&f| (f as i64 - 16).unsigned_abs())
            .unwrap_or(rem);
        if f == rem {
            break;
        }
        arities.push(f);
        rem /= f;
    }
    if rem > 1 {
        arities.push(rem);
    }
    arities
}

/// A refinement unit: a small fixed set of machine slots (one or two
/// leaf blocks) plus the tasks living on them. All distance work is
/// table-driven — a slot×slot matrix and a task×slot external-cost table
/// are built once (`O(slots² + tasks·ext_deg·slots)` oracle calls), after
/// which greedy placement and improvement sweeps cost O(1) per candidate.
///
/// External neighbors are charged at frozen positions supplied by the
/// caller (a snapshot during Jacobi refinement, block-origin proxies
/// during leaf construction), which is what makes units independent and
/// the parallel result bit-identical to the serial one.
struct Unit {
    ms: Vec<TaskId>,
    nodes: Vec<NodeId>,
    /// task index -> slot index (usize::MAX = unplaced).
    slot_of: Vec<usize>,
    /// slot index -> task index (usize::MAX = free).
    occupant: Vec<usize>,
    /// slot×slot distance matrix.
    dmat: Vec<u32>,
    /// task×slot cost against frozen external neighbors.
    ext: Vec<f64>,
    /// task index -> intra-unit neighbors as (task index, weight).
    intra: Vec<Vec<(usize, f64)>>,
}

impl Unit {
    /// Build tables for `ms` over `nodes`. `local_of` is an n-sized
    /// scratch array (all `usize::MAX` on entry; restored before
    /// returning). `ext_pos` gives the frozen position of any task
    /// outside the unit.
    fn new(
        tasks: &TaskGraph,
        topo: &dyn Topology,
        ms: Vec<TaskId>,
        nodes: Vec<NodeId>,
        local_of: &mut [usize],
        ext_pos: &dyn Fn(TaskId) -> NodeId,
    ) -> Unit {
        let (m, s) = (ms.len(), nodes.len());
        for (i, &t) in ms.iter().enumerate() {
            local_of[t] = i;
        }
        let mut dmat = vec![0u32; s * s];
        for a in 0..s {
            for b in (a + 1)..s {
                let d = topo.distance(nodes[a], nodes[b]);
                dmat[a * s + b] = d;
                dmat[b * s + a] = d;
            }
        }
        let mut ext = vec![0f64; m * s];
        let mut intra: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        for (i, &t) in ms.iter().enumerate() {
            for (u, w) in tasks.neighbors(t) {
                let li = local_of[u];
                if li != usize::MAX {
                    if li != i {
                        intra[i].push((li, w));
                    }
                } else {
                    let pu = ext_pos(u);
                    for (sl, &node) in nodes.iter().enumerate() {
                        ext[i * s + sl] += w * topo.distance(node, pu) as f64;
                    }
                }
            }
        }
        for &t in &ms {
            local_of[t] = usize::MAX;
        }
        Unit {
            ms,
            nodes,
            slot_of: vec![usize::MAX; m],
            occupant: vec![usize::MAX; s],
            dmat,
            ext,
            intra,
        }
    }

    /// Load current positions (`proc_of[t]` must be one of the unit's
    /// nodes for every task in the unit).
    fn load_positions(&mut self, proc_of: &[NodeId]) {
        for i in 0..self.ms.len() {
            let node = proc_of[self.ms[i]];
            let sl = self
                .nodes
                .iter()
                .position(|&x| x == node)
                .expect("task on unit slot");
            self.slot_of[i] = sl;
            self.occupant[sl] = i;
        }
    }

    /// Forget the current placement (before a fresh [`Unit::place_greedy`]).
    fn reset(&mut self) {
        self.slot_of.fill(usize::MAX);
        self.occupant.fill(usize::MAX);
    }

    /// Total cost of the current placement: external charges plus each
    /// intra edge once (every edge appears in both endpoints' lists).
    fn objective(&self) -> f64 {
        let s = self.nodes.len();
        let mut total = 0.0;
        for (i, &sl) in self.slot_of.iter().enumerate() {
            total += self.ext[i * s + sl];
            for &(j, w) in &self.intra[i] {
                total += 0.5 * w * self.dmat[sl * s + self.slot_of[j]] as f64;
            }
        }
        total
    }

    /// Greedy initial placement: grow the placement task by task, always
    /// placing the unplaced task most attracted (total edge weight) to
    /// the placed set on the free slot cheapest against its placed
    /// neighbors. Each connected component is seeded by its *lightest*
    /// member — on grid-like clusters that's a corner, which lands on
    /// slot 0 (the block corner) and lets the growth reproduce the
    /// cluster's own shape.
    ///
    /// `charge_ext` controls whether slot choice also charges the frozen
    /// external table. During leaf construction externals are only block
    /// -origin *proxies* — every pull points at a neighbor's corner and
    /// would shear the internal layout — so leaves pass `false` and let
    /// [`Unit::sweeps`] orient the block. During cross-leaf refinement
    /// the externals are real task positions, and charging them lets a
    /// rebuild re-orient a block toward its actual neighbors. Ties:
    /// lowest task index, lowest slot index.
    fn place_greedy(&mut self, charge_ext: bool) {
        let (m, s) = (self.ms.len(), self.nodes.len());
        let wdeg: Vec<f64> = (0..m)
            .map(|i| self.intra[i].iter().map(|&(_, w)| w).sum::<f64>())
            .collect();
        let mut attr = vec![0f64; m];
        for _ in 0..m {
            let mut next = usize::MAX;
            for i in 0..m {
                if self.slot_of[i] != usize::MAX {
                    continue;
                }
                next = if next == usize::MAX {
                    i
                } else if attr[i] > attr[next]
                    || (attr[i] == attr[next] && attr[i] == 0.0 && wdeg[i] < wdeg[next])
                {
                    // Strongest attachment wins; among detached tasks
                    // (fresh components) the lightest — a corner — seeds.
                    i
                } else {
                    next
                };
            }
            let mut best = (f64::INFINITY, usize::MAX);
            for sl in 0..s {
                if self.occupant[sl] != usize::MAX {
                    continue;
                }
                let mut cost = if charge_ext {
                    self.ext[next * s + sl]
                } else {
                    0.0
                };
                for &(j, w) in &self.intra[next] {
                    if self.slot_of[j] != usize::MAX {
                        cost += w * self.dmat[sl * s + self.slot_of[j]] as f64;
                    }
                }
                if cost < best.0 {
                    best = (cost, sl);
                }
            }
            self.slot_of[next] = best.1;
            self.occupant[best.1] = next;
            for &(j, w) in &self.intra[next] {
                attr[j] += w;
            }
        }
    }

    /// Cost delta of putting task `i` on slot `sl` instead of its
    /// current slot (intra neighbors at their current slots; task `skip`
    /// excluded from the intra sum).
    fn delta_to(&self, i: usize, sl: usize, skip: usize) -> f64 {
        let s = self.nodes.len();
        let cur = self.slot_of[i];
        let mut d = self.ext[i * s + sl] - self.ext[i * s + cur];
        for &(j, w) in &self.intra[i] {
            if j != skip {
                let sj = self.slot_of[j];
                d += w * (self.dmat[sl * s + sj] as f64 - self.dmat[cur * s + sj] as f64);
            }
        }
        d
    }

    /// Greedy improvement sweeps (pair swaps and moves to free slots),
    /// up to `max_sweeps` or until none improves. Returns accepted
    /// changes.
    fn sweeps(&mut self, max_sweeps: usize) -> u64 {
        let (m, s) = (self.ms.len(), self.nodes.len());
        let mut changes = 0u64;
        for _ in 0..max_sweeps {
            let mut round = 0u64;
            for i in 0..m {
                let si = self.slot_of[i];
                for sl in 0..s {
                    if sl == si {
                        continue;
                    }
                    let j = self.occupant[sl];
                    if j == usize::MAX {
                        if self.delta_to(i, sl, usize::MAX) < -1e-12 {
                            self.occupant[si] = usize::MAX;
                            self.occupant[sl] = i;
                            self.slot_of[i] = sl;
                            round += 1;
                            break; // i moved; restart its scan at next i
                        }
                    } else if j > i && self.delta_to(i, sl, j) + self.delta_to(j, si, i) < -1e-12 {
                        self.occupant[si] = j;
                        self.occupant[sl] = i;
                        self.slot_of[i] = sl;
                        self.slot_of[j] = si;
                        round += 1;
                        break;
                    }
                }
            }
            changes += round;
            if round == 0 {
                break;
            }
        }
        changes
    }

    /// Emit (task, machine node) assignments.
    fn emit(&self, out: &mut Vec<(TaskId, NodeId)>) {
        for (i, &t) in self.ms.iter().enumerate() {
            out.push((t, self.nodes[self.slot_of[i]]));
        }
    }
}

/// A sub-machine: the metric of `topo` restricted to `nodes` (local id
/// `i` is machine node `nodes[i]`). What the leaf TopoLB runs against.
struct Restriction<'a> {
    topo: &'a dyn Topology,
    nodes: &'a [NodeId],
}

impl Topology for Restriction<'_> {
    fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        self.topo.distance(self.nodes[a], self.nodes[b])
    }

    fn name(&self) -> String {
        format!("Restrict({} of {})", self.nodes.len(), self.topo.name())
    }
}

impl Mapper for HierMapper {
    fn map(&self, tasks: &TaskGraph, topo: &dyn Topology) -> Mapping {
        let n = tasks.num_tasks();
        let p = self.hier.num_nodes();
        assert_eq!(
            p,
            topo.num_nodes(),
            "hierarchy {} covers {p} processors but machine {} has {}",
            self.hier.name(),
            topo.name(),
            topo.num_nodes()
        );
        assert!(n <= p, "need at least as many processors as tasks");
        let _span = obs::span("hier.map");
        let prof = obs::enabled();
        if prof {
            obs::meta_set("hier.shape", &self.hier.shape_spec());
            obs::meta_set("hier.dist", &self.hier.dist_spec());
        }
        if n == 0 {
            return Mapping::new(Vec::new(), p);
        }
        let exec = Executor::new(self.par);
        let a1 = self.hier.arities()[0];
        let leaves = p / a1;

        // --- 1. group tasks into innermost containers ---
        let leaf_of = match self.descent {
            Descent::Coarsen => self.coarsen_to_leaves(tasks, topo),
            Descent::Multisection => self.partition_to_leaves(tasks, topo),
        };

        // --- 2. independent leaf sub-mappings on the pool ---
        let members: Vec<Vec<TaskId>> = {
            let mut v = vec![Vec::new(); leaves];
            for (t, &g) in leaf_of.iter().enumerate() {
                v[g].push(t);
            }
            v
        };
        let leaf_span = obs::span("hier.leaf_map");
        if prof {
            obs::counter_add("hier.leaves", leaves as u64);
            obs::counter_add("hier.leaf_tasks", n as u64);
        }
        // Proxy position for a yet-unmapped neighbor leaf: its block
        // origin. Known before any leaf is mapped, so leaves can orient
        // themselves toward their neighbors without ordering constraints.
        let leaf_origin: Vec<NodeId> = (0..leaves).map(|g| self.pe(g * a1)).collect();
        let placed: Vec<Vec<(TaskId, NodeId)>> = exec.map_chunks(leaves, a1 * a1, |range| {
            let mut out = Vec::new();
            let mut local_of = vec![usize::MAX; n];
            for leaf in range.clone() {
                let ms = &members[leaf];
                if ms.is_empty() {
                    continue;
                }
                if ms.len() == 1 {
                    out.push((ms[0], self.pe(leaf * a1)));
                    continue;
                }
                let leaf_nodes: Vec<NodeId> = (0..a1).map(|o| self.pe(leaf * a1 + o)).collect();
                let origin_of = |u: TaskId| leaf_origin[leaf_of[u]];
                let mut unit = Unit::new(
                    tasks,
                    topo,
                    ms.clone(),
                    leaf_nodes,
                    &mut local_of,
                    &origin_of,
                );
                unit.place_greedy(false);
                unit.sweeps(4 + self.leaf_refine_passes);
                unit.emit(&mut out);
            }
            out
        });
        let mut proc_of = vec![usize::MAX; n];
        for chunk in placed {
            for (t, node) in chunk {
                proc_of[t] = node;
            }
        }
        drop(leaf_span);

        // --- 3. cross-leaf Jacobi swap refinement ---
        // Each pass pairs up leaves that currently exchange the most
        // bytes — a deterministic greedy maximal matching on the live
        // cross-leaf traffic matrix, heaviest pair first — and sweeps
        // each pair as one unit, letting tasks migrate across the leaf
        // boundary to repair grouping raggedness the leaf-local sweeps
        // cannot touch (a pair unit's sweep covers its intra-leaf pairs
        // too, so no single-leaf schedule is needed). Matching by
        // traffic, not by leaf id, means *every* communicating pair of
        // blocks eventually meets, whatever the machine's shape. Every
        // unit reads the pass snapshot for outside neighbors and owns a
        // disjoint set of tasks, so parallel == serial exactly.
        //
        // A pair that sweeps to convergence is remembered in `tried` and
        // not rescheduled until one of its leaves is *dirtied* — changed
        // by a later pass, or holding a neighbor of a changed task. Both
        // sets are derived from the merged pass result
        // (chunking-invariant), so the schedule — and the mapping — stay
        // identical across thread counts.
        if leaves > 1 && self.refine_passes > 0 {
            let _refine_span = obs::span("hier.refine");
            // Hierarchy position of each machine node (to re-derive leaf
            // membership after cross-leaf swaps).
            let node_pos: Vec<usize> = {
                let mut v = vec![0usize; p];
                for q in 0..p {
                    v[self.pe(q)] = q;
                }
                v
            };
            let leaf_at = |proc_of: &[usize], t: TaskId| node_pos[proc_of[t]] / a1;
            // Cheapest nonzero hop between nearby processors — the
            // per-edge floor. A task whose every neighbor already sits at
            // this floor cannot lower its cost by moving (distinct nodes
            // are never closer), so a leaf pair containing only such
            // tasks is provably converged and skipped without building
            // its tables. Sampled from the first block, which on the
            // homogeneous machines this mapper targets is the global
            // minimum; an under-sample merely skips less.
            let dmin = {
                let k = a1.max(2).min(p);
                let mut d = u32::MAX;
                for x in 0..k {
                    for y in (x + 1)..k {
                        d = d.min(topo.distance(self.pe(x), self.pe(y)));
                    }
                }
                d
            };
            let mut tried: std::collections::BTreeSet<(usize, usize)> =
                std::collections::BTreeSet::new();
            for _pass in 0..4 * self.refine_passes {
                // Membership and cross-leaf traffic follow current
                // positions.
                let mut members: Vec<Vec<TaskId>> = vec![Vec::new(); leaves];
                for t in 0..n {
                    members[leaf_at(&proc_of, t)].push(t);
                }
                let mut cross: std::collections::BTreeMap<(usize, usize), f64> =
                    std::collections::BTreeMap::new();
                let mut discontent = vec![false; leaves];
                for (x, y, w) in tasks.edges() {
                    let (gx, gy) = (leaf_at(&proc_of, x), leaf_at(&proc_of, y));
                    if topo.distance(proc_of[x], proc_of[y]) > dmin {
                        discontent[gx] = true;
                        discontent[gy] = true;
                    }
                    if gx != gy {
                        *cross.entry((gx.min(gy), gx.max(gy))).or_insert(0.0) += w;
                    }
                }
                let mut cands: Vec<((usize, usize), f64)> = cross
                    .into_iter()
                    .filter(|(k, _)| (discontent[k.0] || discontent[k.1]) && !tried.contains(k))
                    .collect();
                cands.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
                let mut matched = vec![false; leaves];
                let mut units: Vec<(usize, usize)> = Vec::new();
                for ((g1, g2), _) in cands {
                    if !matched[g1] && !matched[g2] {
                        matched[g1] = true;
                        matched[g2] = true;
                        units.push((g1, g2));
                    }
                }
                if units.is_empty() {
                    break; // every communicating pair swept to convergence
                }
                if prof {
                    obs::counter_add("hier.refine.passes", 1);
                }
                let snapshot = proc_of.clone();
                // Per chunk: (position updates, changed unit indices, swaps).
                type RefineChunk = (Vec<(TaskId, NodeId)>, Vec<usize>, u64);
                let rounds: Vec<RefineChunk> = exec.map_chunks(units.len(), 4 * a1 * a1, |range| {
                    let mut updates = Vec::new();
                    let mut changed_units = Vec::new();
                    let mut swaps = 0u64;
                    let mut local_of = vec![usize::MAX; n];
                    for ui in range.clone() {
                        let (g1, g2) = units[ui];
                        let mut ms = members[g1].clone();
                        ms.extend_from_slice(&members[g2]);
                        if ms.len() < 2 {
                            continue;
                        }
                        let nodes: Vec<NodeId> = (g1 * a1..(g1 + 1) * a1)
                            .chain(g2 * a1..(g2 + 1) * a1)
                            .map(|q| self.pe(q))
                            .collect();
                        let frozen = |u: TaskId| snapshot[u];
                        let mut unit = Unit::new(tasks, topo, ms, nodes, &mut local_of, &frozen);
                        unit.load_positions(&snapshot);
                        let unit_swaps = unit.sweeps(4);
                        // Incremental sweeps can be trapped by a
                        // mis-*oriented* block (fixing it needs a
                        // coherent many-task move no single swap
                        // starts). Also try rebuilding the pair from
                        // scratch with the real frozen externals
                        // charged, and keep whichever placement
                        // scores lower.
                        let incremental = unit.objective();
                        let kept: Vec<usize> = unit.slot_of.clone();
                        unit.reset();
                        unit.place_greedy(true);
                        unit.sweeps(4);
                        let rebuilt = unit.objective() + 1e-9 < incremental;
                        if !rebuilt {
                            unit.occupant.fill(usize::MAX);
                            for (i, &sl) in kept.iter().enumerate() {
                                unit.slot_of[i] = sl;
                                unit.occupant[sl] = i;
                            }
                        }
                        if unit_swaps > 0 || rebuilt {
                            swaps += unit_swaps.max(1);
                            changed_units.push(ui);
                            unit.emit(&mut updates);
                        }
                    }
                    (updates, changed_units, swaps)
                });
                let mut total = 0u64;
                let mut changed: Vec<usize> = Vec::new();
                for (updates, changed_units, swaps) in rounds {
                    total += swaps;
                    changed.extend(changed_units);
                    for (t, node) in updates {
                        proc_of[t] = node;
                    }
                }
                if prof {
                    obs::counter_add("hier.refine.swaps", total);
                }
                // Every scheduled pair has now been swept to convergence
                // against this pass's snapshot; changed pairs dirty their
                // leaves and their tasks' neighbor leaves, re-enabling
                // any remembered pair that touches them. All derived
                // from the merged result, so identical for every
                // chunking.
                for &(g1, g2) in &units {
                    tried.insert((g1, g2));
                }
                if total == 0 {
                    continue; // nothing moved; remaining pairs next pass
                }
                let mut dirtied = vec![false; leaves];
                for &ui in &changed {
                    let (g1, g2) = units[ui];
                    dirtied[g1] = true;
                    dirtied[g2] = true;
                    for &t in members[g1].iter().chain(members[g2].iter()) {
                        for (u, _) in tasks.neighbors(t) {
                            dirtied[leaf_at(&proc_of, u)] = true;
                        }
                    }
                }
                tried.retain(|&(g1, g2)| !dirtied[g1] && !dirtied[g2]);
            }
        }
        Mapping::new(proc_of, p)
    }

    fn name(&self) -> String {
        format!("HierMapper({})", self.hier.shape_spec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{metrics, RandomMap, RefineTopoLb};
    use topomap_taskgraph::gen;
    use topomap_topology::{FatTree, GraphTopology};

    #[test]
    fn valid_injective_mapping_on_torus() {
        let tasks = gen::stencil2d(8, 8, 1024.0, false);
        let machine = Torus::torus_2d(8, 8);
        let h = HierMapper::for_torus_with(&machine, &[4, 4, 4]).unwrap();
        let m = h.map(&tasks, &machine);
        let mut seen = [false; 64];
        for t in 0..64 {
            assert!(!seen[m.proc_of(t)]);
            seen[m.proc_of(t)] = true;
        }
    }

    #[test]
    fn close_to_flat_topolb_on_stencil() {
        let tasks = gen::stencil2d(16, 16, 1024.0, false);
        let machine = Torus::torus_2d(16, 16);
        let flat = metrics::hops_per_byte(
            &tasks,
            &machine,
            &RefineTopoLb::new(TopoLb::default()).map(&tasks, &machine),
        );
        let h = HierMapper::for_torus_with(&machine, &[16, 4, 4]).unwrap();
        let hier = metrics::hops_per_byte(&tasks, &machine, &h.map(&tasks, &machine));
        let rnd =
            metrics::hops_per_byte(&tasks, &machine, &RandomMap::new(1).map(&tasks, &machine));
        assert!(
            hier < 0.5 * rnd,
            "hierarchical {hier} must beat random {rnd}"
        );
        assert!(
            hier <= 1.35 * flat,
            "hierarchical {hier} vs flat+refine {flat}"
        );
    }

    #[test]
    fn works_on_3d_machine() {
        let tasks = gen::stencil3d(4, 4, 4, 512.0, false);
        let machine = Torus::torus_3d(4, 4, 4);
        let h = HierMapper::for_torus_with(&machine, &[8, 8]).unwrap();
        let m = h.map(&tasks, &machine);
        let hpb = metrics::hops_per_byte(&tasks, &machine, &m);
        assert!(hpb < 2.5, "hpb {hpb}");
    }

    #[test]
    fn fattree_machine_via_identity_hierarchy() {
        let tasks = gen::stencil2d(8, 8, 256.0, false);
        let machine = FatTree::new(4, 3);
        let h = HierMapper::new(Hierarchy::from_fattree(&machine));
        let m = h.map(&tasks, &machine);
        assert_eq!(m.num_tasks(), 64);
        let hier = metrics::hops_per_byte(&tasks, &machine, &m);
        let rnd =
            metrics::hops_per_byte(&tasks, &machine, &RandomMap::new(7).map(&tasks, &machine));
        assert!(hier < rnd, "hier {hier} vs random {rnd}");
    }

    #[test]
    fn arbitrary_metric_machine_via_identity_over() {
        let machine = GraphTopology::ring(32);
        let hier = Hierarchy::identity_over(&machine, &[4, 8]).unwrap();
        let tasks = gen::ring(32, 100.0);
        let m = HierMapper::new(hier).map(&tasks, &machine);
        assert_eq!(m.num_tasks(), 32);
    }

    #[test]
    fn fewer_tasks_than_processors() {
        let tasks = gen::ring(10, 100.0);
        let machine = Torus::torus_2d(4, 4);
        let h = HierMapper::for_torus_with(&machine, &[4, 4]).unwrap();
        let m = h.map(&tasks, &machine);
        assert_eq!(m.num_tasks(), 10);
    }

    #[test]
    fn parallel_equals_serial_quick_check() {
        let tasks = gen::stencil2d(8, 8, 777.0, true);
        let machine = Torus::torus_2d(8, 8);
        let mk = |threads: usize| {
            let mut h = HierMapper::for_torus_with(&machine, &[4, 4, 4]).unwrap();
            h.par = Parallelism {
                threads: crate::Threads::Fixed(threads),
                min_work: 1,
            };
            h.map(&tasks, &machine)
        };
        let serial = mk(1);
        assert_eq!(serial, mk(2));
        assert_eq!(serial, mk(8));
    }

    #[test]
    #[should_panic(expected = "covers")]
    fn machine_size_mismatch_panics() {
        let tasks = gen::ring(4, 1.0);
        let machine = Torus::torus_2d(4, 4);
        HierMapper::new(Hierarchy::new(vec![4, 8], vec![1, 3])).map(&tasks, &machine);
    }

    #[test]
    fn auto_arities_cover_and_shape() {
        for p in [1usize, 7, 25, 64, 576, 1024, 4096, 16384] {
            let a = auto_arities(p);
            assert_eq!(a.iter().product::<usize>(), p, "{a:?}");
            assert!(a[0] <= 16);
        }
        assert_eq!(auto_arities(4096), vec![16, 16, 16]);
        assert_eq!(auto_arities(1024), vec![16, 16, 4]);
    }

    #[test]
    fn name_reflects_shape() {
        let h = HierMapper::new(Hierarchy::new(vec![4, 8], vec![1, 3]));
        assert_eq!(h.name(), "HierMapper(4:8)");
    }

    #[test]
    fn unit_deltas_match_brute_force() {
        // One pair unit on a small torus; every delta_to-based decision
        // must match the brute-force hop-bytes change.
        let tasks = gen::stencil2d(4, 8, 100.0, false);
        let machine = Torus::torus_2d(4, 8);
        let h = HierMapper::for_torus_with(&machine, &[8, 4]).unwrap();
        let m = {
            let mut h0 = h.clone();
            h0.refine_passes = 0;
            h0.map(&tasks, &machine)
        };
        let snapshot: Vec<usize> = (0..32).map(|t| m.proc_of(t)).collect();
        let node_pos = {
            let mut v = vec![0usize; 32];
            for q in 0..32 {
                v[h.pe(q)] = q;
            }
            v
        };
        let mut members: Vec<Vec<TaskId>> = vec![Vec::new(); 4];
        for t in 0..32 {
            members[node_pos[snapshot[t]] / 8].push(t);
        }
        let mut ms = members[0].clone();
        ms.extend_from_slice(&members[1]);
        let nodes: Vec<usize> = (0..16).map(|q| h.pe(q)).collect();
        let mut local_of = vec![usize::MAX; 32];
        let frozen = |u: TaskId| snapshot[u];
        let mut unit = Unit::new(
            &tasks,
            &machine,
            ms.clone(),
            nodes.clone(),
            &mut local_of,
            &frozen,
        );
        unit.load_positions(&snapshot);
        // Brute-force objective of a candidate assignment for unit tasks,
        // snapshot for everyone else (each edge once).
        let hb = |slot_of: &[usize]| -> f64 {
            let pos = |t: TaskId| -> usize {
                match ms.iter().position(|&x| x == t) {
                    Some(i) => nodes[slot_of[i]],
                    None => snapshot[t],
                }
            };
            tasks
                .edges()
                .map(|(a, b, w)| w * machine.distance(pos(a), pos(b)) as f64)
                .sum()
        };
        let base = hb(&unit.slot_of);
        for i in 0..ms.len() {
            for sl in 0..nodes.len() {
                if sl == unit.slot_of[i] {
                    continue;
                }
                let j = unit.occupant[sl];
                let mut trial = unit.slot_of.clone();
                let predicted = if j == usize::MAX {
                    trial[i] = sl;
                    unit.delta_to(i, sl, usize::MAX)
                } else {
                    trial.swap(i, j);
                    unit.delta_to(i, sl, j) + unit.delta_to(j, unit.slot_of[i], i)
                };
                let actual = hb(&trial) - base;
                assert!(
                    (predicted - actual).abs() < 1e-6,
                    "i={i} sl={sl} j={j}: predicted {predicted} actual {actual}"
                );
            }
        }
    }
}
