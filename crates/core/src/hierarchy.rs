//! Hierarchical (semi-distributed) topology-aware mapping — the paper's
//! future-work direction implemented.
//!
//! §6: "Due to the massively large sizes of machines like Bluegene, a
//! distributed approach toward keeping communication localized in a
//! neighborhood may be needed for scalability in the future. Hybrid
//! approaches (semi-distributed) ... need to be investigated further."
//!
//! [`HierarchicalTopoLb`] is that hybrid: carve the torus into a grid of
//! equal blocks (sub-meshes), then
//!
//! 1. partition the task graph into one balanced group per block
//!    (multilevel, cut-reducing, sizes forced exact with a boundary
//!    fix-up),
//! 2. map the block-level group graph onto the block grid with TopoLB
//!    (a `B`-node problem), and
//! 3. map each group's tasks onto its block's processors with TopoLB on
//!    the induced subgraph (many independent `(p/B)`-node problems).
//!
//! Total cost drops from O(p²) to O(B² + B·(p/B)²) table work, at a small
//! hop-byte premium (quantified in `exp_ablation`): cross-block edges are
//! only resolved at block granularity.

use crate::{Mapper, Mapping, TopoLb};
use topomap_partition::{MultilevelKWay, Partitioner};
use topomap_taskgraph::{TaskGraph, TaskId};
use topomap_topology::{Topology, Torus};

/// Hierarchical two-level TopoLB over a torus/mesh machine.
#[derive(Debug, Clone)]
pub struct HierarchicalTopoLb {
    /// Number of blocks along each machine dimension. Every entry must
    /// divide the corresponding machine dimension.
    pub blocks_per_dim: Vec<usize>,
    /// Phase-1 partitioner used to form the per-block groups.
    pub partitioner: MultilevelKWay,
}

impl HierarchicalTopoLb {
    pub fn new(blocks_per_dim: Vec<usize>) -> Self {
        HierarchicalTopoLb {
            blocks_per_dim,
            partitioner: MultilevelKWay::default(),
        }
    }

    /// Map `tasks` onto the torus `machine` (the typed entry point; the
    /// [`Mapper`] impl only accepts `Torus` machines and panics
    /// otherwise, since blocks need grid structure).
    pub fn map_torus(&self, tasks: &TaskGraph, machine: &Torus) -> Mapping {
        let dims = machine.dims().to_vec();
        assert_eq!(
            dims.len(),
            self.blocks_per_dim.len(),
            "blocks_per_dim must match machine dimensionality"
        );
        for (d, (&n, &b)) in dims.iter().zip(&self.blocks_per_dim).enumerate() {
            assert!(
                b >= 1 && n % b == 0,
                "dim {d}: {b} blocks must divide size {n}"
            );
        }
        let p = machine.num_nodes();
        let n = tasks.num_tasks();
        assert!(n <= p, "need at least as many processors as tasks");

        let num_blocks: usize = self.blocks_per_dim.iter().product();
        let block_dims: Vec<usize> = dims
            .iter()
            .zip(&self.blocks_per_dim)
            .map(|(&n, &b)| n / b)
            .collect();
        let block_size: usize = block_dims.iter().product();

        // Degenerate split: fall back to flat TopoLB.
        if num_blocks == 1 || num_blocks >= n {
            return TopoLb::default().map(tasks, machine);
        }

        // --- 1. one balanced group per block, sizes forced to fit ---
        let mut assignment = self
            .partitioner
            .partition(tasks, num_blocks)
            .assignment()
            .to_vec();
        enforce_capacities(tasks, &mut assignment, num_blocks, block_size);

        // --- 2. block-level mapping: group graph onto the block grid ---
        // Inter-block distance is modeled by the machine distance between
        // block origins — exact up to an additive intra-block offset.
        let group_graph = tasks.coalesce(&assignment, num_blocks);
        let block_grid = Torus::new(&self.blocks_per_dim, machine.wrap());
        let block_mapping = TopoLb::default().map(&group_graph, &block_grid);

        // --- 3. intra-block mapping, independently per block ---
        let mut proc_of = vec![usize::MAX; n];
        let inner = TopoLb::default();
        for g in 0..num_blocks {
            let members: Vec<TaskId> = (0..n).filter(|&t| assignment[t] == g).collect();
            if members.is_empty() {
                continue;
            }
            // Induced subgraph on this group's tasks.
            let index_of: std::collections::HashMap<TaskId, usize> =
                members.iter().enumerate().map(|(i, &t)| (t, i)).collect();
            let mut sub = TaskGraph::builder(members.len());
            for (i, &t) in members.iter().enumerate() {
                sub.set_task_weight(i, tasks.vertex_weight(t));
                for (u, w) in tasks.neighbors(t) {
                    if let Some(&j) = index_of.get(&u) {
                        if i < j {
                            sub.add_comm(i, j, w);
                        }
                    }
                }
            }
            let sub = sub.build();
            // The block's machine: a sub-mesh (wraparound links within a
            // block only exist if the block spans the full dimension).
            let sub_wrap: Vec<bool> = machine
                .wrap()
                .iter()
                .zip(&self.blocks_per_dim)
                .map(|(&w, &b)| w && b == 1)
                .collect();
            let block_machine = Torus::new(&block_dims, &sub_wrap);
            let local = inner.map(&sub, &block_machine);

            // Translate block-local processors to machine processors.
            let bnode = block_mapping.proc_of(g);
            let bgrid = Torus::new(&self.blocks_per_dim, machine.wrap());
            let bcoords = bgrid.coords(bnode);
            for (i, &t) in members.iter().enumerate() {
                let lc = block_machine.coords(local.proc_of(i));
                let mut mc = vec![0usize; dims.len()];
                for d in 0..dims.len() {
                    mc[d] = bcoords.get(d) * block_dims[d] + lc.get(d);
                }
                proc_of[t] = machine.node_at(&mc);
            }
        }
        let mut mapping = Mapping::new(proc_of, p);

        // --- 4. intra-block swap refinement against the FULL graph ---
        // The intra-block TopoLB saw only the induced subgraph; a few
        // swap passes restricted to same-block pairs re-aim boundary
        // tasks at their cross-block neighbors. Cost is O(Σ_b |b|²·δ̄)
        // = O(p²/B·δ̄) — the hierarchy's subquadratic scaling survives.
        let groups: Vec<Vec<TaskId>> = {
            let mut v = vec![Vec::new(); num_blocks];
            for t in 0..n {
                v[assignment[t]].push(t);
            }
            v
        };
        for _pass in 0..2 {
            let mut improved = false;
            for members in &groups {
                for (i, &a) in members.iter().enumerate() {
                    for &b in &members[i + 1..] {
                        if crate::refine::swap_delta(tasks, machine, &mapping, a, b) < -1e-12 {
                            mapping.swap_tasks(a, b);
                            improved = true;
                        }
                    }
                }
            }
            if !improved {
                break;
            }
        }
        mapping
    }
}

/// Rebalance group sizes to at most `capacity` members each, moving
/// boundary tasks with minimal cut damage into under-full groups.
fn enforce_capacities(
    tasks: &TaskGraph,
    assignment: &mut [usize],
    num_groups: usize,
    capacity: usize,
) {
    let n = assignment.len();
    let mut sizes = vec![0usize; num_groups];
    for &g in assignment.iter() {
        sizes[g] += 1;
    }
    while let Some(over) = (0..num_groups).find(|&g| sizes[g] > capacity) {
        // Receiving group: most under-full (ties -> lowest id).
        let under = (0..num_groups)
            .filter(|&g| sizes[g] < capacity)
            .min_by_key(|&g| (sizes[g], g))
            .expect("total tasks <= total capacity");
        // Evict the member of `over` with the smallest connection to it
        // net of its connection to `under` (least cut damage).
        let victim = (0..n)
            .filter(|&t| assignment[t] == over)
            .min_by(|&a, &b| {
                let cost = |t: TaskId| -> f64 {
                    tasks
                        .neighbors(t)
                        .map(|(u, w)| {
                            if assignment[u] == over {
                                w
                            } else if assignment[u] == under {
                                -w
                            } else {
                                0.0
                            }
                        })
                        .sum()
                };
                cost(a).partial_cmp(&cost(b)).unwrap().then(a.cmp(&b))
            })
            .expect("over-full group is non-empty");
        assignment[victim] = under;
        sizes[over] -= 1;
        sizes[under] += 1;
    }
}

impl Mapper for HierarchicalTopoLb {
    fn map(&self, tasks: &TaskGraph, topo: &dyn Topology) -> Mapping {
        // The hierarchical scheme needs grid structure; accept machines
        // whose name round-trips through a Torus of the same geometry.
        // Callers with a concrete `Torus` should prefer `map_torus`.
        panic!(
            "HierarchicalTopoLb requires a concrete Torus machine; call \
             map_torus(tasks, &torus) instead (machine given: {}, {} tasks)",
            topo.name(),
            tasks.num_tasks()
        );
    }

    fn name(&self) -> String {
        let b: Vec<String> = self.blocks_per_dim.iter().map(|x| x.to_string()).collect();
        format!("HierTopoLB({})", b.join("x"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{metrics, Mapper, RandomMap};
    use topomap_taskgraph::gen;

    #[test]
    fn valid_injective_mapping() {
        let tasks = gen::stencil2d(8, 8, 1024.0, false);
        let machine = Torus::torus_2d(8, 8);
        let h = HierarchicalTopoLb::new(vec![2, 2]);
        let m = h.map_torus(&tasks, &machine);
        let mut seen = [false; 64];
        for t in 0..64 {
            assert!(!seen[m.proc_of(t)]);
            seen[m.proc_of(t)] = true;
        }
    }

    #[test]
    fn close_to_flat_topolb_on_stencil() {
        let tasks = gen::stencil2d(8, 8, 1024.0, false);
        let machine = Torus::torus_2d(8, 8);
        let flat =
            metrics::hops_per_byte(&tasks, &machine, &TopoLb::default().map(&tasks, &machine));
        let hier = metrics::hops_per_byte(
            &tasks,
            &machine,
            &HierarchicalTopoLb::new(vec![2, 2]).map_torus(&tasks, &machine),
        );
        let rnd =
            metrics::hops_per_byte(&tasks, &machine, &RandomMap::new(1).map(&tasks, &machine));
        assert!(
            hier < 0.65 * rnd,
            "hierarchical {hier} must beat random {rnd}"
        );
        assert!(hier <= 2.5 * flat, "hierarchical {hier} vs flat {flat}");
    }

    #[test]
    fn works_on_3d_machine() {
        let tasks = gen::stencil3d(4, 4, 4, 512.0, false);
        let machine = Torus::torus_3d(4, 4, 4);
        let h = HierarchicalTopoLb::new(vec![2, 2, 1]);
        let m = h.map_torus(&tasks, &machine);
        let hpb = metrics::hops_per_byte(&tasks, &machine, &m);
        assert!(hpb < 2.5, "hpb {hpb}");
    }

    #[test]
    fn single_block_falls_back_to_flat() {
        let tasks = gen::stencil2d(4, 4, 1.0, false);
        let machine = Torus::torus_2d(4, 4);
        let h = HierarchicalTopoLb::new(vec![1, 1]);
        let flat = TopoLb::default().map(&tasks, &machine);
        assert_eq!(h.map_torus(&tasks, &machine), flat);
    }

    #[test]
    fn fewer_tasks_than_processors() {
        let tasks = gen::ring(10, 100.0);
        let machine = Torus::torus_2d(4, 4);
        let h = HierarchicalTopoLb::new(vec![2, 2]);
        let m = h.map_torus(&tasks, &machine);
        assert_eq!(m.num_tasks(), 10);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_blocks_rejected() {
        let tasks = gen::ring(9, 1.0);
        let machine = Torus::torus_2d(3, 3);
        HierarchicalTopoLb::new(vec![2, 3]).map_torus(&tasks, &machine);
    }

    #[test]
    fn capacity_enforcement_exact() {
        let tasks = gen::random_graph(40, 3.0, 1.0, 100.0, 4);
        let mut assignment = vec![0usize; 40]; // everything in group 0
        enforce_capacities(&tasks, &mut assignment, 4, 10);
        let mut sizes = vec![0usize; 4];
        for &g in &assignment {
            sizes[g] += 1;
        }
        assert_eq!(sizes, vec![10, 10, 10, 10]);
    }

    #[test]
    fn name_reflects_blocking() {
        assert_eq!(
            HierarchicalTopoLb::new(vec![2, 4]).name(),
            "HierTopoLB(2x4)"
        );
    }
}
