//! Zero-dependency observability layer: hierarchical spans, named
//! counters, and value series, recorded into a process-global recorder
//! and serialized to JSON or CSV.
//!
//! The paper's whole argument runs through measurement — hop-bytes
//! explains contention only because the simulator exposes per-link
//! utilization to confirm it. This module gives every layer of the
//! reproduction (the mappers, the `par` pool, `netsim`) the same
//! treatment: *where* does time and contention go inside a run?
//!
//! ## Design constraints
//!
//! 1. **Compiled in, dynamically off.** Instrumentation ships in release
//!    builds; when disabled (the default) every probe is a single relaxed
//!    atomic load ([`enabled`]) and an early return. No timers are read,
//!    no strings are formatted, no locks are taken.
//! 2. **Provably non-perturbing.** Probes only *observe*: they never
//!    branch the instrumented algorithm, never consume randomness, and
//!    never reorder floating-point accumulation. The mapping produced
//!    with profiling ON is bit-identical to OFF — the invariance suite
//!    (`tests/obs_invariance.rs`) pins this for every mapper, topology
//!    family, and thread count.
//! 3. **Thread-safe.** Counters and series may be bumped from pool
//!    workers; spans form a per-thread tree via a thread-local stack.
//!
//! ## Model
//!
//! - A **span** is a named, timed region. Spans opened while another span
//!   of the same thread is open become its children, so one mapper run
//!   yields a tree like `topolb.map → [estimation.init, topolb.place]`.
//! - A **counter** is a named monotonically-accumulated `u64` (counts or
//!   nanoseconds, by convention suffixed `_ns`).
//! - A **series** is a named list of `f64` observations (e.g. the
//!   hop-byte trajectory of the annealer, or per-link byte loads); its
//!   summary (count/min/max/mean) doubles as a histogram digest.
//!
//! ## Session protocol
//!
//! ```
//! use topomap_core::obs;
//!
//! obs::start();                       // reset buffers, arm recording
//! {
//!     let _outer = obs::span("work");
//!     obs::counter_add("work.items", 3);
//!     obs::series_push("work.delta", -1.5);
//! }
//! let report = obs::finish();         // disarm, drain the recorder
//! assert_eq!(report.counter("work.items"), Some(3));
//! assert!(report.find_span("work").is_some());
//! let json = report.to_json();
//! let back = obs::Report::from_json(&json).unwrap();
//! assert_eq!(back.counter("work.items"), Some(3));
//! ```
//!
//! The recorder is process-global (the [`crate::Mapper`] trait cannot
//! thread a handle through every implementation), so concurrent profiled
//! runs interleave into one report. Tests that assert on counter values
//! serialize themselves around the session (see the invariance suite).

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Schema version stamped into every [`Report`]; bump on breaking
/// changes to the serialized layout (the golden-schema test pins it).
///
/// v2 added the `meta` section: free-form `name = value` string pairs
/// recorded via [`meta_set`] (thread count, host core count, hierarchy
/// shape, …) so PROFILE_*.json artifacts are self-describing — e.g. why
/// the `par.*` counters look serial on a 1-core host. v1 reports (no
/// `meta` field) still parse; `meta` reads back empty.
pub const SCHEMA_VERSION: u32 = 2;

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<Inner>> = Mutex::new(None);

thread_local! {
    /// Open-span stack of this thread: `(session generation, span index)`.
    static SPAN_STACK: RefCell<Vec<(u64, usize)>> = const { RefCell::new(Vec::new()) };
}

/// Whether recording is armed. This is the hot-path guard: one relaxed
/// atomic load, nothing else.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Arm recording without clearing previously recorded data.
pub fn enable() {
    // Make sure the recorder exists so probes never race initialization.
    let mut g = lock();
    if g.is_none() {
        *g = Some(Inner::new(1));
    }
    drop(g);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disarm recording; buffered data stays until [`take_report`]/[`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Clear all recorded data and start a fresh session epoch. Span guards
/// from before the reset become inert (their session generation no
/// longer matches).
pub fn reset() {
    let mut g = lock();
    let generation = g.as_ref().map_or(1, |i| i.generation + 1);
    *g = Some(Inner::new(generation));
}

/// [`reset`] + [`enable`]: begin a fresh recording session.
pub fn start() {
    reset();
    ENABLED.store(true, Ordering::SeqCst);
}

/// [`disable`] + [`take_report`]: end the session and drain the recorder.
pub fn finish() -> Report {
    disable();
    take_report()
}

/// Open a span. Returns a guard that closes the span when dropped; while
/// it lives, further spans opened *on the same thread* become children.
/// A no-op (no lock, no clock) when recording is disabled.
#[must_use = "the span closes when this guard drops"]
pub fn span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { slot: None };
    }
    let mut g = lock();
    let Some(inner) = g.as_mut() else {
        return SpanGuard { slot: None };
    };
    let generation = inner.generation;
    let start_ns = inner.now_ns();
    let parent = SPAN_STACK.with(|s| {
        s.borrow()
            .last()
            .filter(|&&(gen, _)| gen == generation)
            .map(|&(_, idx)| idx)
    });
    let idx = inner.spans.len();
    inner.spans.push(SpanRec {
        name: name.to_string(),
        parent,
        start_ns,
        elapsed_ns: None,
    });
    drop(g);
    SPAN_STACK.with(|s| s.borrow_mut().push((generation, idx)));
    SpanGuard {
        slot: Some((generation, idx)),
    }
}

/// Add `delta` to the named counter. No-op when disabled. Callers that
/// build dynamic names should guard with [`enabled`] to skip the
/// formatting too.
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    if let Some(inner) = lock().as_mut() {
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }
}

/// Append one observation to the named series. No-op when disabled.
pub fn series_push(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    if let Some(inner) = lock().as_mut() {
        inner
            .series
            .entry(name.to_string())
            .or_default()
            .push(value);
    }
}

/// Append many observations to the named series under one lock
/// acquisition (e.g. a per-link heatmap column). No-op when disabled.
pub fn series_extend(name: &str, values: impl IntoIterator<Item = f64>) {
    if !enabled() {
        return;
    }
    if let Some(inner) = lock().as_mut() {
        inner
            .series
            .entry(name.to_string())
            .or_default()
            .extend(values);
    }
}

/// Record a metadata string describing the run environment (thread count,
/// hierarchy shape, host cores, …). Last write wins per name; no-op when
/// disabled. Metadata lands in the report's `meta` section (schema v2).
pub fn meta_set(name: &str, value: &str) {
    if !enabled() {
        return;
    }
    if let Some(inner) = lock().as_mut() {
        inner.meta.insert(name.to_string(), value.to_string());
    }
}

/// Run `f`, adding its wall time in nanoseconds to the named counter.
/// When disabled this is exactly `f()` — no clock is read.
#[inline]
pub fn time_counter<R>(name: &str, f: impl FnOnce() -> R) -> R {
    if !enabled() {
        return f();
    }
    let t = Instant::now();
    let r = f();
    counter_add(name, t.elapsed().as_nanos() as u64);
    r
}

/// Drain everything recorded so far into a [`Report`] and clear the
/// buffers (a fresh session epoch begins).
pub fn take_report() -> Report {
    let mut g = lock();
    let generation = g.as_ref().map_or(1, |i| i.generation + 1);
    let inner = g.replace(Inner::new(generation));
    drop(g);
    match inner {
        Some(inner) => inner.into_report(),
        None => Report::empty(),
    }
}

fn lock() -> std::sync::MutexGuard<'static, Option<Inner>> {
    // The recorder must survive a panicking worker (the pool already
    // propagates the panic); poisoning carries no extra information here.
    STATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Guard returned by [`span`]; closes the span on drop.
pub struct SpanGuard {
    /// `(session generation, span index)`; `None` when recording was
    /// disabled at open time.
    slot: Option<(u64, usize)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((generation, idx)) = self.slot else {
            return;
        };
        SPAN_STACK.with(|s| {
            let mut st = s.borrow_mut();
            if st.last() == Some(&(generation, idx)) {
                st.pop();
            }
        });
        if let Some(inner) = lock().as_mut() {
            if inner.generation == generation {
                let end = inner.now_ns();
                let rec = &mut inner.spans[idx];
                if rec.elapsed_ns.is_none() {
                    rec.elapsed_ns = Some(end.saturating_sub(rec.start_ns));
                }
            }
        }
    }
}

/// Recorder buffers for one session.
struct Inner {
    generation: u64,
    epoch: Instant,
    spans: Vec<SpanRec>,
    counters: BTreeMap<String, u64>,
    series: BTreeMap<String, Vec<f64>>,
    meta: BTreeMap<String, String>,
}

struct SpanRec {
    name: String,
    parent: Option<usize>,
    start_ns: u64,
    elapsed_ns: Option<u64>,
}

impl Inner {
    fn new(generation: u64) -> Self {
        Inner {
            generation,
            epoch: Instant::now(),
            spans: Vec::new(),
            counters: BTreeMap::new(),
            series: BTreeMap::new(),
            meta: BTreeMap::new(),
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn into_report(self) -> Report {
        let now = self.now_ns();
        // Build the span forest: children attach in creation order.
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.spans.len()];
        let mut roots = Vec::new();
        for (i, rec) in self.spans.iter().enumerate() {
            match rec.parent {
                Some(p) => children[p].push(i),
                None => roots.push(i),
            }
        }
        fn build(idx: usize, spans: &[SpanRec], children: &[Vec<usize>], now: u64) -> SpanNode {
            let rec = &spans[idx];
            SpanNode {
                name: rec.name.clone(),
                start_ns: rec.start_ns,
                // A span still open at drain time is charged up to "now".
                elapsed_ns: rec
                    .elapsed_ns
                    .unwrap_or_else(|| now.saturating_sub(rec.start_ns)),
                children: children[idx]
                    .iter()
                    .map(|&c| build(c, spans, children, now))
                    .collect(),
            }
        }
        Report {
            version: SCHEMA_VERSION,
            meta: self
                .meta
                .into_iter()
                .map(|(name, value)| MetaEntry { name, value })
                .collect(),
            spans: roots
                .iter()
                .map(|&r| build(r, &self.spans, &children, now))
                .collect(),
            counters: self
                .counters
                .into_iter()
                .map(|(name, value)| CounterEntry { name, value })
                .collect(),
            series: self
                .series
                .into_iter()
                .map(|(name, values)| SeriesEntry::new(name, values))
                .collect(),
        }
    }
}

/// One node of the span tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanNode {
    pub name: String,
    /// Nanoseconds since the session epoch.
    pub start_ns: u64,
    pub elapsed_ns: u64,
    pub children: Vec<SpanNode>,
}

/// One named counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    pub name: String,
    pub value: u64,
}

/// One run-environment metadata pair (schema v2; see [`meta_set`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetaEntry {
    pub name: String,
    pub value: String,
}

/// One named series with its histogram digest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesEntry {
    pub name: String,
    pub count: u64,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub values: Vec<f64>,
}

impl SeriesEntry {
    fn new(name: String, values: Vec<f64>) -> Self {
        let count = values.len() as u64;
        let (mut min, mut max, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
        for &v in &values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        if values.is_empty() {
            min = 0.0;
            max = 0.0;
        }
        SeriesEntry {
            name,
            count,
            min,
            max,
            mean: if count > 0 { sum / count as f64 } else { 0.0 },
            values,
        }
    }
}

/// A drained recording session: metadata + span forest + counters +
/// series. Meta, counters, and series are sorted by name; spans keep
/// creation order.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Report {
    pub version: u32,
    pub meta: Vec<MetaEntry>,
    pub spans: Vec<SpanNode>,
    pub counters: Vec<CounterEntry>,
    pub series: Vec<SeriesEntry>,
}

/// Hand-written so v1 traces (no `meta` field) still parse — the derive
/// in the vendored serde stub hard-errors on missing fields.
impl Deserialize for Report {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for Report"))?;
        let meta = match serde::value::field(obj, "meta") {
            Ok(m) => Vec::<MetaEntry>::from_value(m)?,
            Err(_) => Vec::new(),
        };
        Ok(Report {
            version: u32::from_value(serde::value::field(obj, "version")?)?,
            meta,
            spans: Vec::<SpanNode>::from_value(serde::value::field(obj, "spans")?)?,
            counters: Vec::<CounterEntry>::from_value(serde::value::field(obj, "counters")?)?,
            series: Vec::<SeriesEntry>::from_value(serde::value::field(obj, "series")?)?,
        })
    }
}

impl Report {
    pub fn empty() -> Self {
        Report {
            version: SCHEMA_VERSION,
            meta: Vec::new(),
            spans: Vec::new(),
            counters: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Value of a metadata entry, if recorded.
    pub fn meta(&self, name: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.value.as_str())
    }

    /// Value of a counter, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// A series by name, if recorded.
    pub fn series(&self, name: &str) -> Option<&SeriesEntry> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Depth-first search of the span forest for the first span with
    /// this name.
    pub fn find_span(&self, name: &str) -> Option<&SpanNode> {
        fn dfs<'a>(nodes: &'a [SpanNode], name: &str) -> Option<&'a SpanNode> {
            for n in nodes {
                if n.name == name {
                    return Some(n);
                }
                if let Some(hit) = dfs(&n.children, name) {
                    return Some(hit);
                }
            }
            None
        }
        dfs(&self.spans, name)
    }

    /// All span names, depth-first.
    pub fn span_names(&self) -> Vec<String> {
        fn walk(nodes: &[SpanNode], out: &mut Vec<String>) {
            for n in nodes {
                out.push(n.name.clone());
                walk(&n.children, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.spans, &mut out);
        out
    }

    /// Total number of spans in the forest.
    pub fn span_count(&self) -> usize {
        self.span_names().len()
    }

    /// Serialize to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parse a report back from its JSON form.
    pub fn from_json(s: &str) -> Result<Report, String> {
        serde_json::from_str(s).map_err(|e| format!("bad trace JSON: {e}"))
    }

    /// Serialize to CSV. Columns are `kind,name,a,b`:
    /// `span,<path>,<start_ns>,<elapsed_ns>` (path is `/`-joined
    /// ancestry), `counter,<name>,<value>,`,
    /// `series,<name>,<index>,<value>` one row per observation, and
    /// `meta,<name>,<value>,` rows at the end (schema v2).
    pub fn to_csv(&self) -> String {
        fn csv_escape(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        fn walk(nodes: &[SpanNode], prefix: &str, out: &mut String) {
            for n in nodes {
                let path = if prefix.is_empty() {
                    n.name.clone()
                } else {
                    format!("{prefix}/{}", n.name)
                };
                let _ = writeln!(
                    out,
                    "span,{},{},{}",
                    csv_escape(&path),
                    n.start_ns,
                    n.elapsed_ns
                );
                walk(&n.children, &path, out);
            }
        }
        let mut out = String::from("kind,name,a,b\n");
        walk(&self.spans, "", &mut out);
        for c in &self.counters {
            let _ = writeln!(out, "counter,{},{},", csv_escape(&c.name), c.value);
        }
        for s in &self.series {
            for (i, v) in s.values.iter().enumerate() {
                let _ = writeln!(out, "series,{},{},{}", csv_escape(&s.name), i, v);
            }
        }
        for m in &self.meta {
            let _ = writeln!(
                out,
                "meta,{},{},",
                csv_escape(&m.name),
                csv_escape(&m.value)
            );
        }
        out
    }

    /// Human-readable summary: the span tree with millisecond timings,
    /// then counters and series digests. Used by the CLI's `--profile`.
    pub fn summary(&self) -> String {
        fn walk(nodes: &[SpanNode], depth: usize, out: &mut String) {
            for n in nodes {
                let _ = writeln!(
                    out,
                    "{:indent$}{} {:.3} ms",
                    "",
                    n.name,
                    n.elapsed_ns as f64 / 1e6,
                    indent = depth * 2
                );
                walk(&n.children, depth + 1, out);
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "-- profile (schema v{}) --", self.version);
        for m in &self.meta {
            let _ = writeln!(out, "meta {:<35} {}", m.name, m.value);
        }
        walk(&self.spans, 0, &mut out);
        for c in &self.counters {
            let _ = writeln!(out, "{:<40} {}", c.name, c.value);
        }
        for s in &self.series {
            let _ = writeln!(
                out,
                "{:<40} n={} min={:.3} mean={:.3} max={:.3}",
                s.name, s.count, s.min, s.mean, s.max
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sessions share process-global state; tests that arm recording
    /// serialize around this lock so counter assertions stay exact.
    static SESSION: Mutex<()> = Mutex::new(());

    fn session() -> std::sync::MutexGuard<'static, ()> {
        SESSION.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_probes_record_nothing() {
        let _g = session();
        disable();
        let _s = span("ghost");
        counter_add("ghost.count", 5);
        series_push("ghost.series", 1.0);
        let r = take_report();
        assert_eq!(r.counter("ghost.count"), None);
        assert!(r.find_span("ghost").is_none());
        assert!(r.series("ghost.series").is_none());
    }

    #[test]
    fn spans_nest_on_one_thread() {
        let _g = session();
        start();
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
                let _leaf = span("leaf");
            }
            let _sibling = span("sibling");
        }
        let r = finish();
        let outer = r.find_span("outer").expect("outer recorded");
        assert_eq!(outer.children.len(), 2);
        assert_eq!(outer.children[0].name, "inner");
        assert_eq!(outer.children[0].children[0].name, "leaf");
        assert_eq!(outer.children[1].name, "sibling");
        assert_eq!(r.span_count(), 4);
        assert!(outer.elapsed_ns >= outer.children[0].elapsed_ns);
    }

    #[test]
    fn counters_and_series_accumulate() {
        let _g = session();
        start();
        counter_add("obs.test.k", 2);
        counter_add("obs.test.k", 3);
        series_push("obs.test.s", 1.0);
        series_extend("obs.test.s", [2.0, 6.0]);
        let r = finish();
        assert_eq!(r.counter("obs.test.k"), Some(5));
        let s = r.series("obs.test.s").unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 6.0);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.values, vec![1.0, 2.0, 6.0]);
    }

    #[test]
    fn time_counter_accumulates_only_when_enabled() {
        let _g = session();
        disable();
        assert_eq!(time_counter("obs.test.t", || 7), 7);
        start();
        let v = time_counter("obs.test.t", || 41 + 1);
        assert_eq!(v, 42);
        let r = finish();
        assert!(r.counter("obs.test.t").is_some());
    }

    #[test]
    fn counters_are_thread_safe() {
        let _g = session();
        start();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        counter_add("obs.test.mt", 1);
                    }
                });
            }
        });
        let r = finish();
        assert_eq!(r.counter("obs.test.mt"), Some(400));
    }

    #[test]
    fn guard_from_before_reset_is_inert() {
        let _g = session();
        start();
        let stale = span("stale");
        start(); // new session; `stale` belongs to the old generation
        let _fresh = span("fresh");
        drop(stale);
        let r = finish();
        assert!(r.find_span("stale").is_none());
        assert!(r.find_span("fresh").is_some());
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let _g = session();
        start();
        {
            let _a = span("a");
            let _b = span("b");
            counter_add("k", 9);
            series_push("s", 2.5);
        }
        let r = finish();
        let back = Report::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.version, SCHEMA_VERSION);
    }

    #[test]
    fn csv_and_summary_render() {
        let _g = session();
        start();
        {
            let _a = span("root");
            let _b = span("child");
        }
        counter_add("c1", 4);
        series_push("s1", 0.5);
        let r = finish();
        let csv = r.to_csv();
        assert!(csv.starts_with("kind,name,a,b\n"), "{csv}");
        assert!(csv.contains("span,root,"), "{csv}");
        assert!(csv.contains("span,root/child,"), "{csv}");
        assert!(csv.contains("counter,c1,4,"), "{csv}");
        assert!(csv.contains("series,s1,0,0.5"), "{csv}");
        let sum = r.summary();
        assert!(sum.contains("root"));
        assert!(sum.contains("c1"));
    }

    #[test]
    fn open_span_is_charged_at_drain() {
        let _g = session();
        start();
        let held = span("still-open");
        let r = take_report();
        disable();
        let s = r.find_span("still-open").unwrap();
        // Drained while open: elapsed is "up to now", not zero.
        assert!(s.elapsed_ns <= r.find_span("still-open").unwrap().elapsed_ns + 1);
        drop(held); // inert: its session was drained
    }

    #[test]
    fn empty_report_shape() {
        let r = Report::empty();
        assert_eq!(r.version, SCHEMA_VERSION);
        assert!(r.spans.is_empty() && r.counters.is_empty() && r.series.is_empty());
        assert!(r.meta.is_empty());
        assert_eq!(r.counter("x"), None);
    }

    #[test]
    fn meta_last_write_wins_and_round_trips() {
        let _g = session();
        start();
        meta_set("obs.test.shape", "4:8:16");
        meta_set("obs.test.shape", "16:16:16");
        meta_set("obs.test.threads", "8");
        let r = finish();
        assert_eq!(r.meta("obs.test.shape"), Some("16:16:16"));
        assert_eq!(r.meta("obs.test.threads"), Some("8"));
        assert_eq!(r.meta("missing"), None);
        let back = Report::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        let csv = r.to_csv();
        assert!(csv.contains("meta,obs.test.shape,16:16:16,"), "{csv}");
        assert!(r.summary().contains("obs.test.shape"));
    }

    #[test]
    fn meta_is_noop_when_disabled() {
        let _g = session();
        disable();
        meta_set("obs.test.ghost", "x");
        start();
        let r = finish();
        assert_eq!(r.meta("obs.test.ghost"), None);
    }

    #[test]
    fn v1_trace_without_meta_still_parses() {
        let v1 = r#"{"version":1,"spans":[],"counters":[{"name":"k","value":3}],"series":[]}"#;
        let r = Report::from_json(v1).unwrap();
        assert_eq!(r.version, 1);
        assert!(r.meta.is_empty());
        assert_eq!(r.counter("k"), Some(3));
    }
}
