//! Deterministic multi-threaded execution layer.
//!
//! Every parallel kernel in this crate is a *chunked scan with an
//! order-independent reduction*: the index space is split into contiguous
//! chunks, each worker produces a partial result for its chunk, and the
//! caller combines the partials **in chunk order** with the same
//! lowest-id tie-break the serial code uses. Because the combining
//! operators (argmin/argmax with id tie-break, disjoint writes,
//! per-item sums that never split one item's floating-point accumulation
//! across workers) are invariant to where the chunk boundaries fall, the
//! result is bit-identical to the serial scan for *every* thread count.
//! That is the determinism guarantee the serial-equivalence test suite
//! pins down.
//!
//! [`Parallelism`] is the user-facing knob (thread count + a work
//! threshold below which regions run serial); [`Executor`] owns the
//! worker pool for one mapping run. The pool is a fork-join broadcaster:
//! workers park on a condvar between regions, so idle threads cost
//! nothing, and one pool amortizes thread spawns over the O(p) parallel
//! regions of a placement loop.

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::obs;

/// Default serial-cutoff threshold: a region whose estimated elementary
/// operation count (`len · work_per_item`) falls below this runs on the
/// calling thread even when a pool exists — the fork-join handshake costs
/// on the order of microseconds, so regions under a few thousand
/// operations lose by parallelizing. Profiles distinguish the two serial
/// causes: `par.regions.serial` (no pool at all) vs
/// `par.regions.below_cutoff` (pool present, region too small), with
/// `par.regions.parallel` counting the regions that actually fanned out.
pub const DEFAULT_MIN_WORK: usize = 4096;

/// Thread-count selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Threads {
    /// Use `TOPOMAP_THREADS` if set (0 or unset → all available cores).
    Auto,
    /// Use exactly this many threads (0 is clamped to 1).
    Fixed(usize),
}

/// Parallelism configuration carried by every mapper.
///
/// `min_work` is an approximate count of elementary operations (distance
/// evaluations, fest reads, gain compares) below which a region is not
/// worth the fork-join handshake and runs on the calling thread. The
/// serial fallback computes exactly the same result — see the module
/// docs — so this is purely a performance knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    pub threads: Threads,
    pub min_work: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism {
            threads: Threads::Auto,
            min_work: DEFAULT_MIN_WORK,
        }
    }
}

impl Parallelism {
    /// Force serial execution.
    pub fn serial() -> Self {
        Parallelism {
            threads: Threads::Fixed(1),
            ..Default::default()
        }
    }

    /// Use exactly `n` threads (0 is clamped to 1).
    pub fn fixed(n: usize) -> Self {
        Parallelism {
            threads: Threads::Fixed(n),
            ..Default::default()
        }
    }

    /// The thread count this configuration resolves to on this machine.
    pub fn resolved_threads(self) -> usize {
        let n = match self.threads {
            Threads::Fixed(n) => n,
            Threads::Auto => env_threads().unwrap_or_else(available_threads),
        };
        n.clamp(1, MAX_THREADS)
    }
}

/// Hard cap so a typo'd `TOPOMAP_THREADS` cannot fork-bomb the host.
const MAX_THREADS: usize = 256;

fn env_threads() -> Option<usize> {
    let v = std::env::var("TOPOMAP_THREADS").ok()?;
    match v.trim().parse::<usize>() {
        Ok(0) | Err(_) => None,
        Ok(n) => Some(n),
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The contiguous sub-range chunk `i` of `k` covers in `0..len`
/// (balanced: the first `len % k` chunks get one extra item).
fn chunk_range(len: usize, k: usize, i: usize) -> Range<usize> {
    let base = len / k;
    let rem = len % k;
    let start = i * base + i.min(rem);
    let end = start + base + usize::from(i < rem);
    start..end
}

/// Per-run executor: a resolved thread count plus (for >1 thread) a
/// parked worker pool.
pub struct Executor {
    threads: usize,
    min_work: usize,
    pool: Option<Pool>,
}

impl Executor {
    pub fn new(par: Parallelism) -> Self {
        let threads = par.resolved_threads();
        let pool = (threads > 1).then(|| Pool::new(threads));
        if obs::enabled() {
            // Self-describing profiles: why par.* counters look serial on
            // a small host is visible in the artifact itself.
            obs::meta_set("par.threads", &threads.to_string());
            obs::meta_set("par.host_cores", &available_threads().to_string());
        }
        Executor {
            threads,
            min_work: par.min_work,
            pool,
        }
    }

    /// Resolved thread count (1 = everything runs on the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f` over `0..len` split into contiguous chunks and return the
    /// per-chunk results in chunk order. Runs serially (a single chunk on
    /// the calling thread) when the pool is absent or the region is below
    /// the work threshold; callers must combine chunk results with a
    /// chunking-invariant reduction so both paths agree bit-for-bit.
    ///
    /// `work_per_item` is the caller's estimate of elementary operations
    /// per index, compared against `Parallelism::min_work`.
    pub fn map_chunks<T, F>(&self, len: usize, work_per_item: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Range<usize>) -> T + Sync,
    {
        // Sampled once per region so the per-worker probes agree with the
        // region-level ones even if profiling is toggled mid-region.
        let prof = obs::enabled();
        let pool = match &self.pool {
            Some(pool) if len.saturating_mul(work_per_item) >= self.min_work && len > 1 => pool,
            _ => {
                if prof {
                    // Two distinct serial causes: no pool at all vs pool
                    // present but the region under the cutoff threshold.
                    let cause = if self.pool.is_some() {
                        "par.regions.below_cutoff"
                    } else {
                        "par.regions.serial"
                    };
                    obs::counter_add(cause, 1);
                    return vec![obs::time_counter("par.serial_ns", || f(0..len))];
                }
                return vec![f(0..len)];
            }
        };
        let k = self.threads;
        let region_start = prof.then(Instant::now);
        let mut out: Vec<Option<T>> = Vec::with_capacity(k);
        out.resize_with(k, || None);
        {
            let slots = Slots(out.as_mut_ptr());
            let f = &f;
            pool.broadcast(&move |i: usize| {
                let r = if prof {
                    let t = Instant::now();
                    let r = f(chunk_range(len, k, i));
                    obs::counter_add(
                        &format!("par.worker.{i}.busy_ns"),
                        t.elapsed().as_nanos() as u64,
                    );
                    r
                } else {
                    f(chunk_range(len, k, i))
                };
                // Sound: each worker index writes exactly one distinct slot,
                // and broadcast() does not return until every worker is done.
                unsafe { slots.set(i, r) };
            });
        }
        if let Some(t) = region_start {
            obs::counter_add("par.regions.parallel", 1);
            obs::counter_add("par.chunks", k as u64);
            obs::counter_add("par.wall_ns", t.elapsed().as_nanos() as u64);
        }
        out.into_iter().map(|r| r.expect("chunk result")).collect()
    }
}

/// Raw slot pointer handed to workers; disjointness of indices makes the
/// unsynchronized writes race-free. Accessed only through [`Slots::set`]
/// so closures capture the whole wrapper (edition-2021 closures would
/// otherwise capture the raw pointer field, which is not `Sync`).
struct Slots<T>(*mut Option<T>);
unsafe impl<T: Send> Send for Slots<T> {}
unsafe impl<T: Send> Sync for Slots<T> {}
impl<T> Slots<T> {
    /// Safety: `i` must be in bounds and written by at most one thread
    /// while the buffer outlives all writers.
    unsafe fn set(&self, i: usize, v: T) {
        *self.0.add(i) = Some(v);
    }
}

/// One fork-join region's job: called once per worker with its index.
type Job = &'static (dyn Fn(usize) + Sync);

struct PoolState {
    /// Current job + generation counter; bumping the generation publishes
    /// a new job to the workers.
    job: Mutex<JobCell>,
    work_cv: Condvar,
    /// Count of workers finished with the current job.
    done: Mutex<usize>,
    done_cv: Condvar,
    panicked: AtomicBool,
}

struct JobCell {
    generation: u64,
    job: Option<Job>,
    shutdown: bool,
}

/// Fork-join worker pool. The caller participates as worker 0, so a pool
/// for `threads` threads spawns `threads - 1` OS threads.
struct Pool {
    state: Arc<PoolState>,
    handles: Vec<JoinHandle<()>>,
}

impl Pool {
    fn new(threads: usize) -> Self {
        debug_assert!(threads > 1);
        let state = Arc::new(PoolState {
            job: Mutex::new(JobCell {
                generation: 0,
                job: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        let handles = (1..threads)
            .map(|index| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("topomap-par-{index}"))
                    .spawn(move || worker_loop(&state, index))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { state, handles }
    }

    /// Run `job(i)` once for every worker index `0..threads`, index 0 on
    /// the calling thread. Returns only after all workers finished, which
    /// is what makes the lifetime erasure below sound: the job reference
    /// cannot dangle while any worker still holds it.
    fn broadcast(&self, job: &(dyn Fn(usize) + Sync)) {
        let job: Job = unsafe { std::mem::transmute(job) };
        *self.state.done.lock().unwrap() = 0;
        {
            let mut cell = self.state.job.lock().unwrap();
            cell.generation += 1;
            cell.job = Some(job);
        }
        self.state.work_cv.notify_all();

        let mine = catch_unwind(AssertUnwindSafe(|| job(0)));

        let workers = self.handles.len();
        let mut done = self.state.done.lock().unwrap();
        while *done != workers {
            done = self.state.done_cv.wait(done).unwrap();
        }
        drop(done);

        match mine {
            Err(payload) => resume_unwind(payload),
            Ok(()) if self.state.panicked.swap(false, Ordering::Relaxed) => {
                panic!("topomap-par worker thread panicked");
            }
            Ok(()) => {}
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut cell = self.state.job.lock().unwrap();
            cell.shutdown = true;
        }
        self.state.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(state: &PoolState, index: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut cell = state.job.lock().unwrap();
            loop {
                if cell.shutdown {
                    return;
                }
                if cell.generation != seen {
                    seen = cell.generation;
                    break cell.job.expect("published job");
                }
                cell = state.work_cv.wait(cell).unwrap();
            }
        };
        if catch_unwind(AssertUnwindSafe(|| job(index))).is_err() {
            state.panicked.store(true, Ordering::Relaxed);
        }
        let mut done = state.done.lock().unwrap();
        *done += 1;
        state.done_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_and_balance() {
        for len in [0usize, 1, 7, 64, 1000] {
            for k in [1usize, 2, 3, 8] {
                let mut next = 0;
                for i in 0..k {
                    let r = chunk_range(len, k, i);
                    assert_eq!(r.start, next, "len {len} k {k} chunk {i}");
                    assert!(r.len() <= len / k + 1);
                    next = r.end;
                }
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn resolution_clamps_and_defaults() {
        assert_eq!(Parallelism::serial().resolved_threads(), 1);
        assert_eq!(Parallelism::fixed(0).resolved_threads(), 1);
        assert_eq!(Parallelism::fixed(3).resolved_threads(), 3);
        assert_eq!(
            Parallelism::fixed(usize::MAX).resolved_threads(),
            MAX_THREADS
        );
        assert!(Parallelism::default().resolved_threads() >= 1);
    }

    #[test]
    fn map_chunks_matches_serial_sum() {
        let data: Vec<u64> = (0..10_000).collect();
        let serial: u64 = data.iter().sum();
        for threads in [1usize, 2, 5, 8] {
            let mut par = Parallelism::fixed(threads);
            par.min_work = 0;
            let exec = Executor::new(par);
            let chunks = exec.map_chunks(data.len(), 1, |r| data[r].iter().sum::<u64>());
            assert_eq!(
                chunks.len(),
                if threads == 1 { 1 } else { threads },
                "{threads} threads"
            );
            assert_eq!(chunks.into_iter().sum::<u64>(), serial);
        }
    }

    #[test]
    fn argmin_reduction_is_chunking_invariant() {
        // The canonical reduction shape used by the estimation kernels:
        // (value, id) argmin with lowest-id tie-break.
        let vals: Vec<u64> = (0..5000)
            .map(|i: u64| i.wrapping_mul(2654435761) % 97)
            .collect();
        let serial = vals
            .iter()
            .enumerate()
            .fold((u64::MAX, usize::MAX), |(bv, bi), (i, &v)| {
                if v < bv || (v == bv && i < bi) {
                    (v, i)
                } else {
                    (bv, bi)
                }
            });
        for threads in [2usize, 3, 8] {
            let mut par = Parallelism::fixed(threads);
            par.min_work = 0;
            let exec = Executor::new(par);
            let partials = exec.map_chunks(vals.len(), 1, |r| {
                r.fold((u64::MAX, usize::MAX), |(bv, bi), i| {
                    if vals[i] < bv || (vals[i] == bv && i < bi) {
                        (vals[i], i)
                    } else {
                        (bv, bi)
                    }
                })
            });
            let combined = partials
                .into_iter()
                .fold((u64::MAX, usize::MAX), |(bv, bi), (v, i)| {
                    if v < bv || (v == bv && i < bi) {
                        (v, i)
                    } else {
                        (bv, bi)
                    }
                });
            assert_eq!(combined, serial, "{threads} threads");
        }
    }

    #[test]
    fn below_threshold_runs_single_chunk() {
        let exec = Executor::new(Parallelism::fixed(4)); // default min_work
        let chunks = exec.map_chunks(8, 1, |r| r.len());
        assert_eq!(chunks, vec![8]);
    }

    #[test]
    fn pool_survives_many_regions() {
        let mut par = Parallelism::fixed(4);
        par.min_work = 0;
        let exec = Executor::new(par);
        for round in 0..200usize {
            let total: usize = exec
                .map_chunks(97, 1, |r| r.map(|i| i * round).sum::<usize>())
                .into_iter()
                .sum();
            assert_eq!(total, (0..97).map(|i| i * round).sum::<usize>());
        }
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let mut par = Parallelism::fixed(2);
        par.min_work = 0;
        let exec = Executor::new(par);
        let result = catch_unwind(AssertUnwindSafe(|| {
            exec.map_chunks(100, 1, |r| {
                // The second chunk runs on the spawned worker.
                assert!(r.start == 0, "boom");
                0usize
            })
        }));
        assert!(result.is_err());
        // The pool must still be usable for the next region.
        let ok: usize = exec.map_chunks(10, 1, |r| r.len()).into_iter().sum();
        assert_eq!(ok, 10);
    }

    #[test]
    fn env_override_is_read() {
        // Only checks the parse helper, not the process env, to stay
        // hermetic under parallel test execution.
        assert_eq!("8".trim().parse::<usize>().ok(), Some(8));
        assert!(env_threads().is_none_or(|n| n >= 1));
    }
}
