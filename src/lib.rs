//! # topomap
//!
//! Topology-aware task mapping for reducing communication contention on
//! large parallel machines — a Rust reproduction of Agarwal, Sharma &
//! Kalé (IPDPS 2006).
//!
//! This facade crate re-exports the whole workspace behind one
//! dependency. The pieces:
//!
//! - [`topology`] — processor graphs (N-D torus/mesh, hypercube,
//!   fat-tree, arbitrary) with distance oracles and deterministic routing.
//! - [`taskgraph`] — weighted task graphs and workload generators
//!   (stencils, synthetic LeanMD, random families).
//! - [`partition`] — multilevel k-way partitioner (METIS substitute) and
//!   load-only partitioners for the paper's phase 1.
//! - [`core`] — the paper's contribution: TopoLB (three estimation
//!   orders), TopoCentLB, RefineTopoLB, hop-byte metrics, and the
//!   two-phase pipeline.
//! - [`lb`] — the Charm++-style LB framework: measured database, strategy
//!   registry, `+LBDump`/`+LBSim` dump & replay, threaded mini-runtime.
//! - [`netsim`] — a discrete-event packet-level network simulator
//!   (BigNetSim substitute) with wormhole/cut-through switching.
//! - [`serve`] — mapping-as-a-service: a persistent mapping daemon with
//!   cached distance oracles, bounded queues with `Busy` backpressure,
//!   and a minimal blocking client.
//!
//! ## Quickstart
//!
//! ```
//! use topomap::prelude::*;
//!
//! // A 2D Jacobi-like application of 64 communicating tasks...
//! let tasks = topomap::taskgraph::gen::stencil2d(8, 8, 4096.0, false);
//! // ...mapped onto a 64-node 3D torus.
//! let machine = Torus::torus_3d(4, 4, 4);
//!
//! let smart = TopoLb::default().map(&tasks, &machine);
//! let naive = RandomMap::new(42).map(&tasks, &machine);
//!
//! let hpb_smart = hops_per_byte(&tasks, &machine, &smart);
//! let hpb_naive = hops_per_byte(&tasks, &machine, &naive);
//! assert!(hpb_smart < hpb_naive / 2.0);
//! ```

pub use topomap_core as core;
pub use topomap_lb as lb;
pub use topomap_netsim as netsim;
pub use topomap_partition as partition;
pub use topomap_serve as serve;
pub use topomap_taskgraph as taskgraph;
pub use topomap_topology as topology;

/// The most common imports in one place.
pub mod prelude {
    pub use topomap_core::metrics::{hop_bytes, hops_per_byte};
    pub use topomap_core::{
        synthesize_coords, ContentionRefine, ContentionReport, Curve, Descent, EstimationOrder,
        GeneticMap, GeomError, HierMapper, IdentityMap, LinearOrderMap, Mapper, Mapping,
        Parallelism, RandomMap, RcbMap, RefineTopoLb, SfcMap, SimObservation,
        SimulatedAnnealingMap, Threads, TopoCentLb, TopoLb,
    };
    pub use topomap_netsim::{
        contention_oracle, NetworkConfig, SimReport, SimStats, Simulation, Trace,
    };
    pub use topomap_partition::{GreedyLoad, MultilevelKWay, Partition, Partitioner};
    pub use topomap_taskgraph::{TaskGraph, TaskId};
    pub use topomap_topology::{
        CachedTopology, Dragonfly, FatTree, GraphTopology, Hierarchy, Hypercube, NodeId,
        RoutedTopology, Topology, Torus,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        use crate::prelude::*;
        let t = Torus::torus_2d(4, 4);
        let g = crate::taskgraph::gen::ring(16, 100.0);
        let m = TopoLb::default().map(&g, &t);
        assert!(hops_per_byte(&g, &t, &m) >= 1.0);
    }
}
