//! Offline stand-in for `crossbeam`.
//!
//! Provides the two pieces this workspace uses: `channel::unbounded` (an
//! mpmc queue built on `Mutex<VecDeque>` + `Condvar`) and `thread::scope`
//! (std scoped threads, with crossbeam's `Result`-returning panic contract).
//! Semantics match crossbeam where it matters here: senders/receivers are
//! clonable, `recv` blocks until a message or full disconnection, `send`
//! fails once every receiver is gone, and `scope` returns `Err` instead of
//! unwinding when a child thread panics.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::send`] when all receivers are dropped.
    /// The unsent message is handed back, like crossbeam's `SendError`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded mpmc channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded mpmc channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded mpmc channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            self.shared.queue.lock().unwrap().push_back(msg);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap();
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.ready.wait(queue).unwrap();
            }
        }

        /// Non-blocking receive; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.queue.lock().unwrap().pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

pub mod thread {
    use std::any::Any;

    /// Scope handle passed to spawned closures (crossbeam passes the scope
    /// back into each child so it can spawn siblings).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope that joins all spawned threads before
    /// returning. Returns `Err` (instead of unwinding) if any child
    /// panicked, matching crossbeam's contract.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};

    #[test]
    fn channel_delivers_across_threads() {
        let (tx, rx) = unbounded::<u64>();
        let senders: Vec<_> = (0..4).map(|_| tx.clone()).collect();
        drop(tx);
        super::thread::scope(|scope| {
            for (i, s) in senders.into_iter().enumerate() {
                scope.spawn(move |_| {
                    for j in 0..100u64 {
                        s.send(i as u64 * 1000 + j).unwrap();
                    }
                });
            }
        })
        .unwrap();
        let mut got: Vec<u64> = (0..400).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(rx.recv(), Err(RecvError), "all senders dropped");
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 400);
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn scope_reports_child_panic_as_err() {
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("child dies"));
        });
        assert!(r.is_err());
        let ok = super::thread::scope(|scope| scope.spawn(|_| 21).join().unwrap() * 2);
        assert_eq!(ok.unwrap(), 42);
    }

    #[test]
    fn nested_spawn_through_scope_handle() {
        let r = super::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        });
        assert_eq!(r.unwrap(), 7);
    }
}
