//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, this stub round-trips every type
//! through a small JSON-shaped [`value::Value`] tree: `Serialize::to_value`
//! builds the tree and `Deserialize::from_value` reads it back. The vendored
//! `serde_json` then renders/parses that tree as JSON text. Representations
//! match serde's defaults for the shapes this workspace uses (named-field
//! structs → objects, unit enum variants → strings, struct variants →
//! single-key objects, tuples → arrays), so the JSON files it writes look
//! exactly like the ones the real crates would produce.

// Let the `::serde::` paths that the derive macros emit resolve even when
// the derives are used inside this crate (e.g. in its own tests).
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: &str) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

pub mod value {
    use super::Error;

    /// A JSON-shaped value tree. Object keys keep insertion order so that
    /// serialized output is deterministic and mirrors field declaration order.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        I64(i64),
        U64(u64),
        F64(f64),
        Str(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(pairs) => Some(pairs),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }
    }

    /// Look up a field in an object by name (used by derived impls).
    pub fn field<'v>(pairs: &'v [(String, Value)], name: &str) -> Result<&'v Value, Error> {
        pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::custom(&format!("missing field `{name}`")))
    }

    /// Look up a field that may be absent (used by derived impls, which
    /// route absence through [`crate::Deserialize::from_missing_field`]).
    pub fn field_opt<'v>(pairs: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
        pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

use value::Value;

/// Conversion into the value tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion out of the value tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called by derived struct impls when a field is absent from the
    /// object. Types with a natural absent form override (Option => None
    /// — the `#[serde(default)]`-for-Option behavior of real serde, so
    /// schemas can grow optional fields without breaking old payloads);
    /// everything else keeps the hard "missing field" error.
    fn from_missing_field(name: &str) -> Result<Self, Error> {
        Err(Error::custom(&format!("missing field `{name}`")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_de_int {
    ($($t:ty => $variant:ident as $repr:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::$variant(*self as $repr)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

ser_de_int!(
    u8 => U64 as u64,
    u16 => U64 as u64,
    u32 => U64 as u64,
    u64 => U64 as u64,
    usize => U64 as u64,
    i8 => I64 as i64,
    i16 => I64 as i64,
    i32 => I64 as i64,
    i64 => I64 as i64,
    isize => I64 as i64
);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(Error::custom("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        if items.len() != N {
            return Err(Error::custom(&format!("expected array of length {N}")));
        }
        let mut out: Vec<T> = Vec::with_capacity(N);
        for it in items {
            out.push(T::from_value(it)?);
        }
        out.try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing_field(_name: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+) of $len:literal),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
                if items.len() != $len {
                    return Err(Error::custom(concat!("expected array of length ", $len)));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

ser_de_tuple!(
    (A: 0) of 1,
    (A: 0, B: 1) of 2,
    (A: 0, B: 1, C: 2) of 3,
    (A: 0, B: 1, C: 2, D: 3) of 4
);

#[cfg(test)]
mod tests {
    use super::value::Value;
    use super::{Deserialize, Serialize};

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn integers_accept_cross_signed_tokens_and_reject_overflow() {
        assert_eq!(u32::from_value(&Value::I64(9)).unwrap(), 9);
        assert!(u32::from_value(&Value::U64(u64::MAX)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
        // JSON integer tokens parse as U64/I64; f64 fields must accept them.
        assert_eq!(f64::from_value(&Value::U64(4)).unwrap(), 4.0);
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<(usize, usize, f64)> = vec![(0, 1, 2.0), (3, 4, 5.0)];
        assert_eq!(
            Vec::<(usize, usize, f64)>::from_value(&v.to_value()).unwrap(),
            v
        );
        let nested: Vec<Vec<u64>> = vec![vec![1, 2], vec![], vec![3]];
        assert_eq!(
            Vec::<Vec<u64>>::from_value(&nested.to_value()).unwrap(),
            nested
        );
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_value(&Value::U64(2)).unwrap(), Some(2));
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Point {
        x: f64,
        y: u64,
        label: String,
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    enum Shape {
        Empty,
        Dot { at: Point },
        Box { w: f64, h: f64 },
    }

    #[test]
    fn derived_struct_round_trips() {
        let p = Point {
            x: 0.5,
            y: 9,
            label: "corner".into(),
        };
        assert_eq!(Point::from_value(&p.to_value()).unwrap(), p);
        // Field order in the value tree follows declaration order.
        let Value::Object(pairs) = p.to_value() else {
            panic!("expected object")
        };
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["x", "y", "label"]);
    }

    #[test]
    fn derived_enum_round_trips() {
        for s in [
            Shape::Empty,
            Shape::Dot {
                at: Point {
                    x: 1.0,
                    y: 2,
                    label: "p".into(),
                },
            },
            Shape::Box { w: 3.0, h: 4.0 },
        ] {
            assert_eq!(Shape::from_value(&s.to_value()).unwrap(), s);
        }
        // Unit variants serialize as bare strings, like serde's default.
        assert_eq!(Shape::Empty.to_value(), Value::Str("Empty".into()));
        assert!(Shape::from_value(&Value::Str("Bogus".into())).is_err());
    }
}
