//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! This workspace is built in hermetic environments with no access to
//! crates.io, so the handful of `rand` APIs the mappers and generators use
//! are reimplemented here: a seeded `StdRng` (xoshiro256++ seeded via
//! SplitMix64), `Rng::{gen_range, gen_bool, gen}`, `SeedableRng`, and
//! `seq::SliceRandom::shuffle` (Fisher–Yates).
//!
//! Streams are **not** byte-compatible with crates.io `rand`; every user in
//! this workspace only relies on determinism-per-seed and statistical
//! uniformity, both of which xoshiro256++ provides.

/// Sampling from a range, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut impl RngCore) -> T;
}

/// The minimal core-RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`0..n`, `0.0..1.0`, `-a..=a`, ...).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!(!p.is_nan(), "gen_bool probability is NaN");
        self.unit_f64() < p
    }

    /// Uniform `f64` in `[0, 1)`.
    fn unit_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded RNG: xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

// Range impls used by the workspace.

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                // Lemire-style unbiased bounded sampling via rejection.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (lo..hi + 1).sample(rng)
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        // The closed upper bound is hit with probability 0 either way.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// Uniform Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let g = rng.gen_range(-0.25..=0.25f64);
            assert!((-0.25..=0.25).contains(&g));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            let expected = n / 10;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let expected = n / 4;
        assert!((hits as i64 - expected as i64).abs() < (n / 50) as i64);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
        assert!([1usize, 2, 3].choose(&mut rng).is_some());
        assert!(Vec::<usize>::new().choose(&mut rng).is_none());
    }
}
