//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API:
//! `lock()` returns the guard directly (a poisoned std lock is recovered,
//! matching parking_lot's no-poisoning semantics).

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock; `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Reader-writer lock; `read()`/`write()` never return a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Mutex::new(7u32);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock();
            panic!("poison it");
        }));
        assert_eq!(*m.lock(), 7);
    }
}
