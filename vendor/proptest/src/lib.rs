//! Offline stand-in for `proptest`.
//!
//! Supports the surface this workspace's property tests use: the
//! `proptest!` macro with `#![proptest_config(...)]`, range and `any::<T>`
//! strategies, tuple strategies, `collection::vec`, `Just`,
//! `prop_map`/`prop_flat_map`, and `prop_assert*`/`prop_assume`.
//!
//! Differences from the real crate, deliberately accepted:
//! - **Deterministic by default.** Cases derive from a fixed per-test seed
//!   (override with `PROPTEST_SEED`; case count with `PROPTEST_CASES`), so
//!   CI runs are reproducible. A failure message reports the case seed.
//! - **No shrinking.** A failing case is reported with its seed as-is;
//!   regression pinning is done with explicit `#[test]`s instead of
//!   `.proptest-regressions` files (which this stub ignores).

pub mod test_runner {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure: the property is violated.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration (subset of the real `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    fn env_u64(name: &str) -> Option<u64> {
        std::env::var(name).ok()?.trim().parse().ok()
    }

    /// FNV-1a, used to derive a stable per-test base seed from its name.
    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Execute one property: `cases` deterministic cases, each fed by an
    /// RNG seeded from (test name, case index). Panics on the first
    /// failing case, reporting the case seed for replay.
    pub fn run<F>(config: &ProptestConfig, test_name: &str, mut case: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let cases = env_u64("PROPTEST_CASES")
            .map(|n| n as u32)
            .unwrap_or(config.cases);
        let base = env_u64("PROPTEST_SEED").unwrap_or_else(|| fnv1a(test_name));
        let mut rejected = 0u64;
        let mut ran = 0u64;
        let mut i = 0u64;
        // Allow extra iterations to compensate for rejected cases, like
        // the real runner's max_global_rejects.
        while ran < u64::from(cases) && i < u64::from(cases) * 16 {
            let seed = base ^ i.wrapping_mul(0x9E3779B97F4A7C15);
            let mut rng = StdRng::seed_from_u64(seed);
            match case(&mut rng) {
                Ok(()) => ran += 1,
                Err(TestCaseError::Reject(_)) => rejected += 1,
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest: property `{test_name}` failed at case {ran} \
                     (seed {seed}): {msg}\n\
                     replay with PROPTEST_SEED={seed} PROPTEST_CASES=1"
                ),
            }
            i += 1;
        }
        assert!(
            ran >= u64::from(cases) / 2,
            "proptest: property `{test_name}` rejected too many cases \
             ({rejected} rejects, {ran} runs)"
        );
    }

    /// Generate one value from a strategy (used by the `proptest!` macro).
    pub fn generate<S: Strategy>(strategy: &S, rng: &mut StdRng) -> S::Value {
        strategy.generate(rng)
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of test-case values. Unlike the real crate there is no
    /// value tree: generation is direct and shrinking is not supported.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Erase the concrete strategy type (parity with the real API).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Type-erased strategy (`Rc` so it stays clonable like the real one).
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: std::rc::Rc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.inner.generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(usize, u32, u64, i32, i64, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!(
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
        (A: 0, B: 1, C: 2, D: 3, E: 4, G: 5)
    );
}

/// `any::<T>()` support: the full/default value domain of a type.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngCore;

    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    pub trait Arbitrary: Sized {
        fn from_u64(raw: u64) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::from_u64(rng.next_u64())
        }
    }

    impl Arbitrary for bool {
        fn from_u64(raw: u64) -> bool {
            raw & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn from_u64(raw: u64) -> $t {
                    raw as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Uniform values over a type's whole domain (`bool`, integers).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed count or a range.
    pub trait SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            if self.start >= self.end {
                self.start
            } else {
                rng.gen_range(self.clone())
            }
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `proptest::collection::vec`: a vector of values from `element`
    /// with a length drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use super::arbitrary::any;
    pub use super::strategy::{Just, Strategy};
    pub use super::test_runner::{ProptestConfig, TestCaseError};
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// The property-test entry macro. Each `#[test] fn name(arg in strategy,
/// ...) { body }` becomes a normal test running `cases` deterministic
/// seeded cases.
#[macro_export]
macro_rules! proptest {
    // Internal arms first: the public entry arm below is a catch-all.
    (@cfg ($config:expr) ) => {};
    (
        @cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            $crate::test_runner::run(
                &config,
                concat!(module_path!(), "::", stringify!($name)),
                |rng| {
                    $(let $arg = $crate::test_runner::generate(&($strategy), rng);)+
                    $body
                    Ok(())
                },
            );
        }
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Assert inside a property; failure reports the case seed instead of
/// panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}", l, r, ::std::format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Discard the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

// Re-exports at the crate root, as the real crate provides.
pub use strategy::Strategy;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 1u32..=8, f in 0.5f64..4.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=8).contains(&y));
            prop_assert!((0.5..4.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose(
            v in crate::collection::vec((0usize..10, any::<bool>()), 1..20),
            k in (2usize..=5).prop_map(|n| n * 2),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&(a, _)| a < 10));
            prop_assert!(k % 2 == 0 && (4..=10).contains(&k));
        }

        #[test]
        fn flat_map_dependent_generation(
            (n, idx) in (1usize..=16).prop_flat_map(|n| (Just(n), 0..n)),
        ) {
            prop_assert!(idx < n, "{idx} vs {n}");
        }

        #[test]
        fn assume_rejects_without_failing(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn failing_property_panics_with_seed() {
        let caught = std::panic::catch_unwind(|| {
            crate::test_runner::run(&ProptestConfig::with_cases(8), "always_fails", |_rng| {
                Err(TestCaseError::fail("nope"))
            });
        });
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("PROPTEST_SEED="), "{msg}");
    }

    #[test]
    fn cases_are_deterministic() {
        let collect = || {
            let mut got = Vec::new();
            crate::test_runner::run(
                &ProptestConfig::with_cases(16),
                "determinism_probe",
                |rng| {
                    got.push(crate::test_runner::generate(&(0u64..1_000_000), rng));
                    Ok(())
                },
            );
            got
        };
        assert_eq!(collect(), collect());
    }
}
