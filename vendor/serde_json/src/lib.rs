//! Offline stand-in for `serde_json`.
//!
//! Renders and parses JSON text over the vendored `serde` stub's value tree.
//! Floats print via Rust's shortest-roundtrip `Display`, so every finite
//! `f64` survives a text round trip exactly (the real crate's
//! `float_roundtrip` behavior). Integer tokens parse as integers and are
//! accepted by `f64` fields downstream, matching real serde_json.

use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Error produced by JSON parsing, IO, or value conversion.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(format!("io error: {e}"))
    }
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = format!("{x}");
        out.push_str(&s);
        // `Display` prints integral floats without a fractional part; keep
        // the token a float so the round trip stays type-faithful enough.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // Real serde_json renders non-finite floats as null.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, pretty: bool, indent: usize) {
    let pad = |out: &mut String, n: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..n {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                write_value(out, item, pretty, indent + 1);
            }
            if !items.is_empty() {
                pad(out, indent);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                write_escaped(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, pretty, indent + 1);
            }
            if !pairs.is_empty() {
                pad(out, indent);
            }
            out.push('}');
        }
    }
}

fn render<T: Serialize + ?Sized>(value: &T, pretty: bool) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), pretty, 0);
    out
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(render(value, false))
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(render(value, true))
}

pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut w: W, value: &T) -> Result<(), Error> {
    w.write_all(render(value, false).as_bytes())?;
    Ok(())
}

pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(mut w: W, value: &T) -> Result<(), Error> {
    w.write_all(render(value, true).as_bytes())?;
    w.write_all(b"\n")?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        match self.peek() {
            Some(c) if c == b => {
                self.pos += 1;
                Ok(())
            }
            other => Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                other.map(|c| c as char)
            ))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("short \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("bad escape \\{}", *other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if matches!(self.bytes.get(self.pos), Some(b'-')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number token"))?;
        if tok.is_empty() || tok == "-" {
            return Err(Error::new(format!("expected number at byte {start}")));
        }
        if is_float {
            tok.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("bad float `{tok}`")))
        } else if let Some(stripped) = tok.strip_prefix('-') {
            stripped
                .parse::<i64>()
                .map(|n| Value::I64(-n))
                .map_err(|_| Error::new(format!("bad integer `{tok}`")))
        } else {
            tok.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("bad integer `{tok}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => {
                self.expect(b'{')?;
                let mut pairs = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    pairs.push((key, val));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` in object, found {:?}",
                                other.map(|c| c as char)
                            )))
                        }
                    }
                }
            }
            Some(b'[') => {
                self.expect(b'[')?;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` in array, found {:?}",
                                other.map(|c| c as char)
                            )))
                        }
                    }
                }
            }
            Some(b'"') => {
                self.skip_ws();
                self.parse_string().map(Value::Str)
            }
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(_) => self.parse_number(),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_document(&mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::new(format!("trailing data at byte {}", self.pos)));
        }
        Ok(v)
    }
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    Ok(T::from_value(&value)?)
}

pub fn from_reader<R: Read, T: Deserialize>(mut r: R) -> Result<T, Error> {
    let mut s = String::new();
    r.read_to_string(&mut s)?;
    from_str(&s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_as_text() {
        assert_eq!(to_string(&3u64).unwrap(), "3");
        assert_eq!(to_string(&(-5i64)).unwrap(), "-5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<u64>("3").unwrap(), 3);
        assert_eq!(from_str::<i64>("-5").unwrap(), -5);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<f64>("7").unwrap(), 7.0);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [
            0.1,
            1.0 / 3.0,
            1e-300,
            123_456_789.123_456_79,
            f64::MAX,
            -0.0,
        ] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text} -> {back}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nquote\"slash\\tab\tünïcode".to_string();
        let text = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), s);
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
    }

    #[test]
    fn containers_round_trip_as_text() {
        let v: Vec<(usize, usize, f64)> = vec![(0, 1, 0.5), (2, 3, 1.5)];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[[0,1,0.5],[2,3,1.5]]");
        assert_eq!(from_str::<Vec<(usize, usize, f64)>>(&text).unwrap(), v);
        assert_eq!(from_str::<Vec<u64>>("[]").unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<Vec<u64>> = vec![vec![1, 2], vec![3]];
        let mut buf = Vec::new();
        to_writer_pretty(&mut buf, &v).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u64>>>(&text).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
