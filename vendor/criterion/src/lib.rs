//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the bench targets use — `Criterion`,
//! `benchmark_group`, `sample_size`, `bench_with_input`/`bench_function`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with straightforward
//! wall-clock measurement: per benchmark, iteration count is calibrated so
//! one sample takes ≥ ~2 ms, then `sample_size` samples are taken and the
//! median/min/max per-iteration times reported.
//!
//! Results print to stdout; set `CRITERION_JSON=<path>` to also append one
//! JSON object per benchmark (used to record `BENCH_*.json` baselines).

use std::io::Write as _;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Measurement handle passed to the bench closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the calibrated iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Debug, Clone)]
struct BenchResult {
    group: String,
    id: String,
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Run a benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, "", 20, &id.into().id, f);
        self
    }

    /// Print the closing summary and flush JSON output if requested.
    pub fn final_summary(&self) {
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if let Err(e) = self.append_json(&path) {
                eprintln!("criterion stub: cannot write {path}: {e}");
            }
        }
    }

    fn append_json(&self, path: &str) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        for r in &self.results {
            writeln!(
                f,
                "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{:.1},\
                 \"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}",
                r.group, r.id, r.median_ns, r.min_ns, r.max_ns, r.samples, r.iters_per_sample
            )?;
        }
        Ok(())
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark (criterion's lower bound is 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for API parity; the stub's sample time is calibrated, not
    /// budgeted, so this is a no-op.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = self.name.clone();
        run_bench(self.criterion, &name, self.sample_size, &id.into().id, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = self.name.clone();
        run_bench(self.criterion, &name, self.sample_size, &id.id, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F>(criterion: &mut Criterion, group: &str, samples: usize, id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: grow the iteration count until one sample costs ≥ ~2 ms,
    // so short benchmarks aren't pure timer noise.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }

    let mut per_iter_ns: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let (min, max) = (per_iter_ns[0], per_iter_ns[per_iter_ns.len() - 1]);

    let full = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!(
        "{full:<50} median {:>12} (min {}, max {}, {samples} samples x {iters} iters)",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max),
    );
    criterion.results.push(BenchResult {
        group: group.to_string(),
        id: id.to_string(),
        median_ns: median,
        min_ns: min,
        max_ns: max,
        samples,
        iters_per_sample: iters,
    });
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Define a benchmark group function, mirroring the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Define `main` running the listed groups, mirroring the real macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(3);
            g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 1);
        let r = &c.results[0];
        assert_eq!(r.group, "demo");
        assert_eq!(r.id, "sum/100");
        assert!(r.median_ns > 0.0);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
    }

    #[test]
    fn calibration_scales_iters_for_fast_bodies() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1u64)));
        assert!(c.results[0].iters_per_sample > 1, "noop should be batched");
    }
}
