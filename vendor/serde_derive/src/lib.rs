//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! value-tree model of the vendored `serde` stub (`serde::Serialize::to_value`
//! / `serde::Deserialize::from_value`), without `syn`/`quote`: the item is
//! parsed directly from the token stream and the impl is emitted as source
//! text. Supported shapes are exactly what this workspace derives on:
//! non-generic named-field structs, and enums whose variants are unit or
//! named-field. Representation matches serde's external default: unit
//! variants as `"Name"`, struct variants as `{"Name": {..fields..}}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a derive target.
enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<(String, Vec<String>)>,
    },
}

/// Skip attributes (`#[...]`, including expanded doc comments) and
/// visibility (`pub`, `pub(...)`) at the cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracket group is an attribute.
                match tokens.get(i + 1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => i += 2,
                    _ => return i,
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parse the field names out of a named-field brace group, skipping each
/// field's type (tracking `<...>` nesting so commas inside generics don't
/// split fields; tuples and other groups are single opaque tokens).
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        fields.push(name.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive stub: expected ':' after field, got {other:?}"),
        }
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }
    let Some(TokenTree::Group(body)) = tokens.get(i) else {
        panic!("serde_derive stub: `{name}` must have a braced body (named fields)");
    };
    match kind.as_str() {
        "struct" => {
            assert!(
                body.delimiter() == Delimiter::Brace,
                "serde_derive stub: tuple struct `{name}` is not supported"
            );
            Item::Struct {
                name,
                fields: parse_named_fields(body),
            }
        }
        "enum" => {
            let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
            let mut variants = Vec::new();
            let mut j = 0;
            while j < tokens.len() {
                j = skip_attrs_and_vis(&tokens, j);
                let Some(TokenTree::Ident(vname)) = tokens.get(j) else {
                    break;
                };
                let vname = vname.to_string();
                j += 1;
                let fields = match tokens.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        j += 1;
                        parse_named_fields(g)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        panic!("serde_derive stub: tuple variant `{name}::{vname}` unsupported")
                    }
                    _ => Vec::new(),
                };
                if matches!(tokens.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    j += 1;
                }
                variants.push((vname, fields));
            }
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive stub: cannot derive on `{other}`"),
    }
}

fn object_expr(fields: &[String], accessor: impl Fn(&str) -> String) -> String {
    let mut s = String::from("::serde::value::Value::Object(::std::vec![");
    for f in fields {
        s.push_str(&format!(
            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({})),",
            accessor(f)
        ));
    }
    s.push_str("])");
    s
}

fn struct_build_expr(path: &str, fields: &[String], obj: &str) -> String {
    let mut s = format!("{path} {{");
    for f in fields {
        // Absent fields go through `from_missing_field`: still a hard
        // error for most types, but Option fields default to None so
        // schemas can grow without breaking old payloads.
        s.push_str(&format!(
            "{f}: match ::serde::value::field_opt({obj}, \"{f}\") {{
                ::std::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?,
                ::std::option::Option::None => ::serde::Deserialize::from_missing_field(\"{f}\")?,
            }},"
        ));
    }
    s.push('}');
    s
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, fields } => {
            let obj = object_expr(&fields, |f| format!("&self.{f}"));
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::value::Value {{ {obj} }}
                }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, fields) in &variants {
                if fields.is_empty() {
                    arms.push_str(&format!(
                        "{name}::{v} => ::serde::value::Value::Str(\
                            ::std::string::String::from(\"{v}\")),"
                    ));
                } else {
                    let binds = fields.join(", ");
                    let inner = object_expr(fields, |f| f.to_string());
                    arms.push_str(&format!(
                        "{name}::{v} {{ {binds} }} => ::serde::value::Value::Object(\
                            ::std::vec![(::std::string::String::from(\"{v}\"), {inner})]),"
                    ));
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::value::Value {{
                        match self {{ {arms} }}
                    }}
                }}"
            )
        }
    };
    body.parse()
        .expect("serde_derive stub: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, fields } => {
            let build = struct_build_expr(&name, &fields, "obj");
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::value::Value)
                        -> ::std::result::Result<Self, ::serde::Error> {{
                        let obj = v.as_object().ok_or_else(|| ::serde::Error::custom(
                            \"expected object for struct {name}\"))?;
                        ::std::result::Result::Ok({build})
                    }}
                }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (v, fields) in &variants {
                if fields.is_empty() {
                    unit_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),"
                    ));
                } else {
                    let build = struct_build_expr(&format!("{name}::{v}"), fields, "inner");
                    data_arms.push_str(&format!(
                        "\"{v}\" => {{
                            let inner = val.as_object().ok_or_else(|| ::serde::Error::custom(
                                \"expected object for variant {name}::{v}\"))?;
                            ::std::result::Result::Ok({build})
                        }}"
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::value::Value)
                        -> ::std::result::Result<Self, ::serde::Error> {{
                        match v {{
                            ::serde::value::Value::Str(s) => match s.as_str() {{
                                {unit_arms}
                                other => ::std::result::Result::Err(::serde::Error::custom(
                                    &::std::format!(\"unknown variant {{other}} of {name}\"))),
                            }},
                            ::serde::value::Value::Object(pairs) if pairs.len() == 1 => {{
                                let (tag, val) = &pairs[0];
                                match tag.as_str() {{
                                    {data_arms}
                                    other => ::std::result::Result::Err(::serde::Error::custom(
                                        &::std::format!(
                                            \"unknown variant {{other}} of {name}\"))),
                                }}
                            }}
                            _ => ::std::result::Result::Err(::serde::Error::custom(
                                \"expected string or single-key object for enum {name}\")),
                        }}
                    }}
                }}"
            )
        }
    };
    body.parse()
        .expect("serde_derive stub: generated Deserialize impl must parse")
}
